"""Criticality estimation -- the quality-control half of QAWS.

The paper (section 3.5) borrows the *canary input* insight from IRA [58]:
a partition's sensitivity to approximation can be judged from cheap input
statistics.  SHMT uses two metrics -- the data range and the standard
deviation within the region -- and treats partitions with the widest value
distributions as critical.

Why this works mechanically in this reproduction (and on the real Edge
TPU): symmetric INT8 quantization's step size is ``range / 254``, so a
partition mixing large outliers with small values gets a coarse grid and
its small values suffer huge *relative* error.  Range+stddev is exactly
the signal that predicts that blow-up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CriticalityEstimate:
    """Input statistics for one partition, from samples or the full block."""

    value_range: float
    std: float
    mean_abs: float
    n_observations: int

    @property
    def score(self) -> float:
        """Scalar ranking score: wide + dispersed partitions rank high.

        Used by the top-K policy (Algorithm 2), which only needs a total
        order, so the mixed units of range and stddev are harmless.
        """
        return self.value_range + self.std

    @property
    def relative_int8_error(self) -> float:
        """Estimated relative error of INT8 quantization on this partition.

        Half a quantization step (``range / 254 / 2``) relative to the
        typical value magnitude.  The device-limit policy (Algorithm 1)
        compares this against each device's acceptable limit.
        """
        step = self.value_range / 254.0
        return 0.5 * step / (self.mean_abs + 1e-12)


def estimate_criticality(values: np.ndarray) -> CriticalityEstimate:
    """Build a :class:`CriticalityEstimate` from sampled (or full) values."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        return CriticalityEstimate(0.0, 0.0, 0.0, 0)
    return CriticalityEstimate(
        value_range=float(values.max() - values.min()),
        std=float(values.std()),
        mean_abs=float(np.abs(values).mean()),
        n_observations=int(values.size),
    )
