"""The virtual-device driver interface (paper Figure 3).

The paper frames SHMT's runtime as "a kernel driver of a virtual device":
software submits VOPs as commands to one big virtual accelerator, and
results come back through a completion queue.  :class:`VirtualDevice` is
that facade over :class:`~repro.core.runtime.SHMTRuntime` -- a
submit/poll command interface with per-command handles, so a user program
can enqueue a batch of VOPs and drain completions, exactly the usage
pattern of a real device driver.

Execution remains deterministic and simulated: commands run at ``poll``
time in submission order, and each completion carries the full
:class:`~repro.core.result.ExecutionReport`.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.core.result import ExecutionReport
from repro.core.runtime import SHMTRuntime
from repro.core.vop import VOPCall


@dataclass(frozen=True)
class CommandHandle:
    """Opaque ticket returned by :meth:`VirtualDevice.submit`."""

    command_id: int
    label: str


@dataclass
class Completion:
    """One finished command from the completion queue."""

    handle: CommandHandle
    report: ExecutionReport

    @property
    def output(self):
        return self.report.output

    @property
    def faulted(self) -> bool:
        """True when the command's run observed any device faults."""
        return self.report.faulted

    @property
    def degraded(self) -> bool:
        """True when the result completed at reduced quality (see
        :attr:`~repro.core.result.ExecutionReport.degraded`)."""
        return self.report.degraded

    @property
    def fault_events(self):
        """The run's fault log (empty on a clean run)."""
        return self.report.fault_events

    @property
    def metrics(self):
        """The run's :class:`~repro.obs.recorder.RunMetrics` snapshot
        (``None`` unless the runtime was built with
        ``RuntimeConfig(observe=True)``)."""
        return self.report.metrics


@dataclass
class _PendingCommand:
    handle: CommandHandle
    call: VOPCall


class VirtualDevice:
    """Submit/poll facade over the SHMT runtime.

    Usage::

        device = VirtualDevice(runtime)
        h1 = device.submit(VOPCall("Sobel", image))
        h2 = device.submit(VOPCall("FFT", signal))
        for completion in device.poll():
            ...use completion.output...
    """

    def __init__(self, runtime: SHMTRuntime) -> None:
        self.runtime = runtime
        self._incoming: Deque[_PendingCommand] = deque()
        self._completions: Deque[Completion] = deque()
        self._in_flight: Dict[int, CommandHandle] = {}
        self._ids = itertools.count()
        #: Simulated seconds accumulated across all completed commands.
        self.elapsed_simulated_seconds = 0.0

    # ----------------------------------------------------------------- submit

    def submit(self, call: VOPCall) -> CommandHandle:
        """Enqueue a VOP command; returns its handle immediately."""
        handle = CommandHandle(command_id=next(self._ids), label=call.label)
        self._incoming.append(_PendingCommand(handle=handle, call=call))
        self._in_flight[handle.command_id] = handle
        return handle

    @property
    def pending(self) -> int:
        """Commands submitted but not yet executed."""
        return len(self._incoming)

    # ------------------------------------------------------------------- poll

    def poll(self, max_commands: Optional[int] = None) -> List[Completion]:
        """Execute queued commands (in order) and drain the completion queue.

        Args:
            max_commands: execute at most this many queued commands before
                returning (``None`` = drain everything).
        """
        executed = 0
        while self._incoming and (max_commands is None or executed < max_commands):
            pending = self._incoming.popleft()
            report = self.runtime.execute(pending.call)
            self.elapsed_simulated_seconds += report.makespan
            self._completions.append(Completion(handle=pending.handle, report=report))
            del self._in_flight[pending.handle.command_id]
            executed += 1
        drained = list(self._completions)
        self._completions.clear()
        return drained

    def wait(self, handle: CommandHandle) -> Completion:
        """Execute until ``handle`` completes; return its completion.

        Other completions drained along the way stay queued for ``poll``.
        """
        if handle.command_id not in self._in_flight:
            already = [c for c in self._completions if c.handle == handle]
            if already:
                self._completions.remove(already[0])
                return already[0]
            raise KeyError(f"unknown or already-consumed command {handle}")
        while True:
            if not self._incoming:
                # The handle is tracked as in flight but its command is no
                # longer queued (lost to a cancel/reset path): fail with a
                # clear error instead of an IndexError from the deque.
                del self._in_flight[handle.command_id]
                raise KeyError(
                    f"command {handle} is in flight but no longer queued; "
                    "it was cancelled or lost before execution"
                )
            pending = self._incoming.popleft()
            report = self.runtime.execute(pending.call)
            self.elapsed_simulated_seconds += report.makespan
            completion = Completion(handle=pending.handle, report=report)
            del self._in_flight[pending.handle.command_id]
            if pending.handle == handle:
                return completion
            self._completions.append(completion)
