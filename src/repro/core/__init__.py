"""SHMT core: VOPs, HLOPs, partitioning, runtime, and scheduling policies."""

from repro.core.control import RunControl, filter_blocked
from repro.core.driver import CommandHandle, Completion, VirtualDevice
from repro.core.hlop import HLOP, HLOPStatus
from repro.core.iterative import IterativeResult, run_iterative
from repro.core.partition import Partition, PartitionConfig, plan_partitions
from repro.core.program import Program, ProgramResult
from repro.core.quality import CriticalityEstimate, estimate_criticality
from repro.core.result import BatchReport, ExecutionReport
from repro.core.runtime import RuntimeConfig, SHMTRuntime
from repro.core.sampling import (
    DEFAULT_SAMPLING_RATE,
    ReductionSampler,
    Sampler,
    StridingSampler,
    UniformSampler,
    make_sampler,
)
from repro.core.schedulers import (
    Plan,
    PlanContext,
    Scheduler,
    make_scheduler,
    scheduler_names,
)
from repro.core.vop import VOP_TABLE, VOPCall, kernel_for_vop, vop_catalog

__all__ = [
    "RunControl",
    "filter_blocked",
    "CommandHandle",
    "Completion",
    "VirtualDevice",
    "HLOP",
    "HLOPStatus",
    "IterativeResult",
    "run_iterative",
    "Partition",
    "PartitionConfig",
    "plan_partitions",
    "Program",
    "ProgramResult",
    "CriticalityEstimate",
    "estimate_criticality",
    "BatchReport",
    "ExecutionReport",
    "RuntimeConfig",
    "SHMTRuntime",
    "DEFAULT_SAMPLING_RATE",
    "Sampler",
    "StridingSampler",
    "UniformSampler",
    "ReductionSampler",
    "make_sampler",
    "Plan",
    "PlanContext",
    "Scheduler",
    "make_scheduler",
    "scheduler_names",
    "VOP_TABLE",
    "VOPCall",
    "kernel_for_vop",
    "vop_catalog",
]
