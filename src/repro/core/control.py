"""Run-control hooks: how a long-lived service steers one simulated run.

:class:`RunControl` is the runtime-facing half of the serving layer
(:mod:`repro.serve`).  The runtime knows nothing about services, circuit
breakers, or checkpoints; it only consults an optional control object at
four well-defined points:

* **admission-time device filtering** -- :meth:`RunControl.blocked_devices`
  is asked once, before planning, which devices the run must avoid (open
  circuit breakers).  The surviving set is what the scheduler plans over,
  so routing *and* steal targets skip open devices for the whole run.  The
  verdict is frozen at run start on purpose: a run is a deterministic
  function of (call, seed, blocked set), which is what makes checkpoint
  resume bit-identical and keeps mid-run breaker flaps from perturbing
  in-flight work.
* **attempt outcomes** -- :meth:`RunControl.on_attempt` reports every
  accepted HLOP completion (``ok=True``) and every fault-path event
  (transient failure, watchdog timeout, worker crash, device death,
  output corruption; ``ok=False``).  This is the breaker's signal feed.
* **result journaling** -- :meth:`RunControl.on_hlop_result` receives each
  accepted HLOP result exactly once, in completion order (the checkpoint
  writer's hook).
* **resume lookup** -- :meth:`RunControl.stored_result` may serve a
  previously journaled result for an HLOP id, skipping the numeric work.
  Simulated timing is unchanged (service times are calibrated
  predictions, never measured), so a resumed run replays the interrupted
  run's timeline exactly and only fills in the missing numerics.

The base class is a complete no-op; a runtime with ``control=None`` takes
one ``is None`` branch per hook site and is bit-identical to a runtime
that has never heard of serving.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np


class RunControl:
    """Service-side hooks into one run; the base class is a no-op."""

    def blocked_devices(self, names: Sequence[str]) -> Set[str]:
        """Device names this run must not schedule onto (open breakers)."""
        del names
        return set()

    def on_attempt(self, device_name: str, ok: bool, kind: str = "") -> None:
        """One HLOP attempt resolved on ``device_name`` (breaker feed)."""

    def on_hlop_result(self, hlop_id: int, result: np.ndarray) -> None:
        """An HLOP's result was accepted (checkpoint journaling hook)."""

    def stored_result(self, hlop_id: int) -> Optional[np.ndarray]:
        """A journaled result to serve instead of computing, or ``None``."""
        del hlop_id
        return None


def filter_blocked(devices: Sequence, blocked: Set[str]) -> List:
    """Drop breaker-open devices from a run's device set, safely.

    Fail-open guards (overload protection must never deadlock a run):

    * if every device is blocked, the full set is returned unchanged;
    * if blocking would remove every exact (rank-0) device while the
      original set had one, the best-rated exact device is kept -- the
      runtime's corruption-recovery and memory-fallback paths need an
      exact device to exist.
    """
    open_devices = [d for d in devices if d.name not in blocked]
    if not open_devices:
        return list(devices)
    had_exact = any(d.accuracy_rank == 0 for d in devices)
    has_exact = any(d.accuracy_rank == 0 for d in open_devices)
    if had_exact and not has_exact:
        exact = [d for d in devices if d.accuracy_rank == 0]
        open_devices.append(exact[0])
        open_devices.sort(key=lambda d: [x.name for x in devices].index(d.name))
    return open_devices
