"""Virtual operations (VOPs) -- the hardware-independent computation layer.

A VOP describes *what* to compute with no assumption about which device(s)
will run it or how data will be partitioned (paper section 3.2.1).  The
SHMT runtime decomposes each VOP into HLOPs at schedule time.

:data:`VOP_TABLE` reproduces the paper's Table 1: the prototype's VOP set,
split by parallelization model (element-wise "vector" VOPs vs tile-wise
"matrix tiling" VOPs).  Every entry maps to a registered kernel; the few
Table 1 rows that are aliases of the same numeric kernel (e.g. ``conv`` and
``stencil``) share one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import InvalidInput, UnknownName
from repro.kernels.registry import KernelSpec, get_kernel

#: Paper Table 1, mapped to registered kernel names.
VOP_TABLE: Dict[str, Dict[str, str]] = {
    "vector": {
        "add": "add",
        "sub": "sub",
        "multiply": "multiply",
        "log": "log",
        "max": "max",
        "min": "min",
        "relu": "relu",
        "rsqrt": "rsqrt",
        "sqrt": "sqrt",
        "tanh": "tanh",
        "reduce_sum": "reduce_sum",
        "reduce_average": "reduce_average",
        "reduce_max": "reduce_max",
        "reduce_min": "reduce_min",
        "reduce_hist256": "histogram",
        "scan": "scan",
        "blackscholes": "blackscholes",
    },
    "tiling": {
        "conv": "stencil",
        "stencil": "stencil",
        "DCT8x8": "dct8x8",
        "FDWT97": "dwt",
        "FFT": "fft",
        "GEMM": "gemm",
        "Laplacian": "laplacian",
        "Mean_Filter": "mean_filter",
        "Sobel": "sobel",
        "SRAD": "srad",
        "parabolic_PDE": "hotspot",
    },
}


def vop_catalog() -> List[str]:
    """Every VOP opcode the prototype supports, across both models."""
    names: List[str] = []
    for group in VOP_TABLE.values():
        names.extend(group)
    return sorted(set(names))


def kernel_for_vop(opcode: str) -> KernelSpec:
    """Resolve a Table 1 opcode to its kernel spec."""
    for group in VOP_TABLE.values():
        if opcode in group:
            return get_kernel(group[opcode])
    raise UnknownName(f"unknown VOP opcode {opcode!r}; catalog: {vop_catalog()}")


@dataclass
class VOPCall:
    """One VOP invocation: opcode (or kernel name) plus its input data.

    This is what a user program "offloads" to SHMT's virtual device.  The
    optional ``context`` overrides the kernel's host-context builder (e.g.
    supplying the B operand of a GEMM); ``label`` names the call in traces.
    """

    opcode: str
    data: np.ndarray
    context: Any = None
    label: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data, dtype=np.float32)
        if self.data.size == 0:
            raise InvalidInput(f"{self.opcode}: empty input data")
        if not np.all(np.isfinite(self.data)):
            # Non-finite values would silently poison the approximate
            # devices' quantization calibration (percentiles of NaN).
            raise InvalidInput(f"{self.opcode}: input contains NaN or infinity")
        if self.label is None:
            self.label = self.opcode

    @property
    def spec(self) -> KernelSpec:
        try:
            return kernel_for_vop(self.opcode)
        except KeyError:
            return get_kernel(self.opcode)

    def data_fingerprint(self) -> Optional[str]:
        """Cached content fingerprint of ``data``, or ``None``.

        Memoized only for read-only arrays (in-place mutation cannot
        invalidate the memo, because writing raises); a writeable ``data``
        returns ``None`` and callers fall back to hashing actual bytes.
        The memo is keyed by object identity, so rebinding ``data`` to a
        different (read-only) array recomputes.
        """
        if self.data.flags.writeable:
            return None
        cached = getattr(self, "_data_fp", None)
        if cached is not None and cached[0] is self.data:
            return cached[1]
        from repro.exec.task import fingerprint_array

        fp = fingerprint_array(self.data)
        self._data_fp = (self.data, fp)
        return fp

    def seed_fingerprint(self, fp: str) -> None:
        """Install a externally-derived fingerprint for frozen ``data``.

        The DAG layer (:mod:`repro.core.graph`) knows an intermediate
        array's provenance -- it is a pure deterministic function of the
        graph's literal inputs, the runtime identity, and the seed -- so
        it can key the array by that provenance instead of hashing the
        bytes it just produced.  Only read-only data may be seeded (the
        same mutation-safety rule as the memo in
        :meth:`data_fingerprint`), and the caller owns the soundness
        contract: the fingerprint must change whenever the content can.
        """
        if self.data.flags.writeable:
            raise InvalidInput(
                f"{self.opcode}: cannot seed a fingerprint on writeable data"
            )
        self._data_fp = (self.data, fp)

    def resolve_context(self) -> Any:
        """The host context for this call: explicit override or kernel default.

        The default is built from the *full-precision* input, mirroring the
        host-side preprocessing the paper's runtime performs before
        partitioning (section 3.3.2).
        """
        if self.context is not None:
            return self.context
        # Memoized for read-only data (same identity rules as
        # :meth:`data_fingerprint`): the default context is a pure function
        # of (spec, data), and the sweeps resolve the same frozen call
        # hundreds of times.  Kernels treat contexts as read-only (task
        # purity), so sharing one object is safe.
        if not self.data.flags.writeable:
            cached = getattr(self, "_resolved_ctx", None)
            if cached is not None and cached[0] is self.data:
                return cached[1]
            resolved = self.spec.make_context(self.data.astype(np.float64))
            self._resolved_ctx = (self.data, resolved)
            return resolved
        return self.spec.make_context(self.data.astype(np.float64))
