"""The SHMT runtime system: the "driver" of the virtual hardware device.

This is the paper's section 3.3 component.  Given one or more
:class:`VOPCall`\\ s and a :class:`Scheduler`, the runtime:

1. builds host context and partitions each VOP's data per its
   parallelization model (page-granular, section 3.4);
2. asks the scheduler for an initial HLOP-to-queue assignment (charging
   any sampling/canary cost to the host timeline);
3. replays execution on the discrete-event engine -- one incoming queue
   per device, a transfer engine per device that double-buffers data
   movement, work stealing when a device idles (the completion-queue
   bookkeeping of the paper collapses into completion events here);
4. actually computes every HLOP's numbers through its device's precision
   path, then aggregates partition outputs (or merges reduction partials)
   into each call's final result;
5. returns an :class:`ExecutionReport` per call (plus a
   :class:`BatchReport` for multi-call runs) with the timeline, energy,
   work shares, and result arrays.

:meth:`SHMTRuntime.execute` runs one VOP; :meth:`SHMTRuntime.execute_batch`
runs several *concurrently* on the same devices -- the paper's Figure 1
picture, where HLOPs from different functions interleave across the
hardware and the host's dispatch work for later calls overlaps with device
execution of earlier ones.

Simulated timing and real numerics advance together, so a policy's speedup
and its result quality come from the same schedule.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.core.control import RunControl, filter_blocked
from repro.core.hlop import HLOP, HLOPStatus
from repro.core.partition import (
    Partition,
    PartitionConfig,
    plan_partitions,
    split_partition,
)
from repro.core.result import BatchReport, ExecutionReport
from repro.core.schedulers.base import Plan, PlanContext, Scheduler
from repro.core.vop import VOPCall
from repro.devices.base import Device
from repro.devices.energy import EnergyBreakdown
from repro.devices.platform import Platform
from repro.errors import DeadlineExceeded, DeviceFault, InvalidInput
from repro.exec.backends import ResolvedHandle, TaskHandle, make_backend
from repro.exec.cache import CacheIntegrityError, result_cache
from repro.exec.fuse import FusingBackend
from repro.exec.task import ComputeTask, fingerprint_value
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.kernels.common import replicate_pad
from repro.kernels.registry import KernelSpec, ParallelModel
from repro.obs.decisions import DecisionKind
from repro.obs.recorder import NULL_RECORDER, Recorder, RunObserver
from repro.sim.engine import Engine
from repro.sim.events import Event, EventKind
from repro.sim.trace import Trace
from repro.verify.invariants import RunChecker

#: HLOP count at which the calibrated SHMT overhead splits between fixed
#: per-HLOP and per-element components (see RuntimeConfig.fixed_share).
REFERENCE_HLOP_COUNT = 64
REFERENCE_ITEM_COUNT = 2048 * 2048

#: Fault kinds that count as device *failures* for a service's circuit
#: breakers (recovery actions like retry/re-queue/degrade are not
#: failures; they are what the breaker's failure count already paid for).
_BREAKER_FAILURE_KINDS = frozenset(
    {
        FaultKind.TRANSIENT,
        FaultKind.TIMEOUT,
        FaultKind.DEVICE_DEATH,
        FaultKind.CORRUPTION,
        FaultKind.WORKER_CRASH,
    }
)


@dataclass(frozen=True)
class RuntimeConfig:
    """Runtime knobs; defaults reproduce the paper's default setup."""

    partition: PartitionConfig = field(default_factory=PartitionConfig)
    seed: int = 2023
    #: Share of the calibrated SHMT overhead that is a fixed per-HLOP cost
    #: (queue management, command submission); the rest scales per element
    #: (quantization, aggregation copies).  Fixed costs are what make tiny
    #: problem sizes unprofitable (paper Figure 12).
    fixed_share: float = 0.3
    #: Granularity adaptation (paper section 3.4): when a thief steals the
    #: last eligible HLOP from a victim, re-partition it so each side gets
    #: a rate-proportional piece instead of moving it wholesale.  Off by
    #: default so the headline figures use the exact calibrated setup; the
    #: endgame-balance benefit is measured in
    #: benchmarks/test_ablation_split.py.
    split_on_steal: bool = False
    #: Optional fault plan (see :mod:`repro.faults`).  ``None`` -- and an
    #: empty plan -- keep the runtime on the exact seed behaviour with
    #: zero overhead: no watchdogs, no result guards, bit-identical
    #: output.  A platform may also carry a plan; the config's wins.
    fault_plan: Optional[FaultPlan] = None
    #: Watchdog deadline per HLOP attempt, as a multiple of the device's
    #: *predicted* service time (legitimate throttling included).  An
    #: attempt still running at the deadline is declared timed out and
    #: retried/re-queued.  Only armed when a fault plan is active.
    watchdog_factor: float = 4.0
    #: Same-device retries after a transient failure or timeout before
    #: the HLOP is re-queued to another device.
    max_retries: int = 2
    #: Base of the capped exponential backoff (simulated seconds) between
    #: same-device retries: delay = min(cap, base * 2**(retry - 1)).
    retry_backoff: float = 100e-6
    retry_backoff_cap: float = 10e-3
    #: Hard ceiling on cross-device migrations per HLOP.  A plan under
    #: which no device can ever finish an HLOP (e.g. every device hung)
    #: fails with a clear error instead of bouncing work forever.
    max_requeues: int = 32
    #: Record run telemetry (metrics registry, scheduler-decision log,
    #: per-phase profile; see :mod:`repro.obs`) and attach the
    #: :class:`~repro.obs.recorder.RunMetrics` snapshot to the reports.
    #: Off by default: the disabled path uses a no-op recorder and the
    #: run is bit-identical to an unobserved one.
    observe: bool = False
    #: Compute backend executing HLOP numerics (see :mod:`repro.exec`):
    #: ``"serial"`` (inline, the historical behaviour), ``"pool"`` (shared
    #: thread pool; numpy releases the GIL), or ``"process"``.  The DES
    #: timeline uses only calibrated service times, so scheduling
    #: decisions -- and therefore outputs -- are bit-identical across
    #: backends; results join at the simulated completion event.
    backend: str = "serial"
    #: Worker count for the pool backends (``None`` = cpu_count-derived).
    jobs: Optional[int] = None
    #: Fuse runs of compatible HLOPs into single backend submissions and
    #: batch same-kernel HLOPs (across concurrent calls) into vectorized
    #: evaluations (see :mod:`repro.exec.fuse`).  Per-HLOP service times
    #: and completion events are untouched, and fused numerics are
    #: bit-identical to unfused ones (pinned by
    #: :func:`repro.verify.differential.check_fuse_equivalence`), so this
    #: only changes wall-clock, never results or timelines.  Automatically
    #: suspended for runs with an active fault plan, where per-attempt
    #: injection decisions must stay interleaved with submissions.
    fuse: bool = False
    #: Consult/populate the process-wide content-addressed result cache
    #: (:func:`repro.exec.cache.result_cache`).  Hits are bit-identical to
    #: recomputing, so this only changes wall-clock, never results.
    cache: bool = False
    #: Drive a multi-call batch as independent *jobs* on one wall-clock
    #: driver (see :mod:`repro.core.overlap`): each call keeps its own
    #: virtual clock, trace, rng stream, and hlop-id space -- outputs and
    #: per-job makespans are bit-identical to running the calls
    #: back-to-back (pinned by
    #: :func:`repro.verify.differential.check_overlap_equivalence`) --
    #: while host dispatch, backend compute, and aggregation of
    #: *different* jobs interleave in wall time.  Pool/process workers see
    #: many jobs' tasks in flight at once, and with ``fuse`` the fusion
    #: pass batches across jobs through the driver's submission batcher.
    overlap: bool = False
    #: Run the :mod:`repro.verify` invariant checker over this run: HLOP
    #: conservation, tiling coverage, clock monotonicity, span containment
    #: and per-device serialization, queue conservation across steals, the
    #: energy bound, and cache fingerprint verification.  Violations are
    #: mirrored into the run's recorder and raised as
    #: :class:`~repro.verify.invariants.InvariantViolation`.  Off by
    #: default: the disabled path is one ``is None`` test per hook site
    #: and the run is bit-identical to an unchecked one.
    validate: bool = False
    #: Deadline budget for this run's device execution, in simulated
    #: seconds.  ``None`` (the default) never cancels.  With a deadline,
    #: the event loop stops at the budget and a run with unfinished HLOPs
    #: raises :class:`~repro.errors.DeadlineExceeded` -- cooperative
    #: cancellation at HLOP boundaries, the serving layer's QoS knob.
    deadline: Optional[float] = None
    #: Service hooks into the run (see :mod:`repro.core.control`):
    #: admission-time device filtering for open circuit breakers, breaker
    #: signal feed, checkpoint journaling, and resume result lookup.
    #: ``None`` keeps the runtime bit-identical to a control-unaware one.
    control: Optional[RunControl] = None


@dataclass
class _Running:
    """The attempt currently occupying a device's compute engine."""

    hlop: HLOP
    start: float
    done_event: Event
    watchdog_event: Optional[Event] = None
    #: Model-predicted service time of this attempt (for the decision log).
    predicted: float = 0.0


@dataclass
class _DeviceState:
    """Mutable per-device bookkeeping during one simulated run."""

    device: Device
    queue: Deque[HLOP] = field(default_factory=deque)
    running: bool = False
    transfer_free: float = 0.0
    busy_seconds: float = 0.0
    wait_seconds: float = 0.0
    items_done: int = 0
    #: Permanently failed (fault plan device death); accepts no more work.
    dead: bool = False
    current: Optional[_Running] = None


@dataclass
class _CallUnit:
    """One VOPCall's slice of a (possibly batched) run."""

    index: int
    call: VOPCall
    spec: KernelSpec
    calibration: Any
    host_context: Any
    padded_input: np.ndarray
    plan: Plan
    hlops: List[HLOP]
    total_items: int
    #: ``"blk1:<data-fp>:halo=..."`` when the call's input is frozen --
    #: block cache keys are then derived from (input fingerprint, slice
    #: bounds) instead of hashing every block's bytes.  ``None`` falls
    #: back to content hashing.
    block_key_prefix: Optional[str] = None
    #: ``fingerprint_value(host_context)`` computed once per call ("" =
    #: unfingerprintable, so tasks are uncacheable).
    ctx_key: Optional[str] = None
    dispatch_seconds: float = 0.0
    ready_time: float = 0.0
    finish_time: float = 0.0
    #: Devices on which the call's input already resides (DAG buffer
    #: reuse: the producing step ran pinned there, so its output never
    #: round-tripped through the host).  HLOPs executing on one of these
    #: devices skip the host->device input transfer; a steal or requeue
    #: onto any other device pays the normal transfer cost.
    resident_devices: frozenset = frozenset()
    transfers_waived: int = 0
    #: Per device-class accounting for this call only.
    items_by_class: Dict[str, int] = field(default_factory=dict)
    busy_by_class: Dict[str, float] = field(default_factory=dict)
    wait_seconds: float = 0.0
    busy_seconds: float = 0.0
    steal_count: int = 0
    retry_count: int = 0
    requeue_count: int = 0
    degraded: bool = False


class SHMTRuntime:
    """Executes VOPs on a platform under a scheduling policy."""

    def __init__(
        self,
        platform: Platform,
        scheduler: Scheduler,
        config: Optional[RuntimeConfig] = None,
        backend: Optional[Any] = None,
    ) -> None:
        self.platform = platform
        self.scheduler = scheduler
        self.config = config or RuntimeConfig()
        #: Compute backend for HLOP numerics (see :mod:`repro.exec`).  An
        #: explicit ``backend`` lets several runtimes share one (the
        #: overlap driver batches cross-runtime submissions through it);
        #: results are backend-independent, so sharing is semantics-free.
        self.backend = backend if backend is not None else make_backend(
            self.config.backend,
            jobs=self.config.jobs,
            cache=result_cache() if self.config.cache else None,
            validate=self.config.validate,
            fuse=self.config.fuse,
        )

    # ------------------------------------------------------------------ public

    def execute(self, call: VOPCall) -> ExecutionReport:
        """Run one VOP end to end and report everything about the run."""
        return self.execute_batch([call]).reports[0]

    def execute_batch(self, calls: Sequence[VOPCall]) -> BatchReport:
        """Run several VOPs concurrently on the shared devices.

        HLOPs of all calls share the device queues: devices drain and steal
        across calls, and the host's partition/dispatch work for later
        calls overlaps with device execution of earlier ones (the paper's
        Figure 1 execution picture).
        """
        if not calls:
            raise InvalidInput("execute_batch needs at least one call")
        if self.config.overlap and len(calls) > 1:
            return self._execute_overlapped(calls)
        return self.prepare_batch(calls).execute()

    def prepare_batch(self, calls: Sequence[VOPCall]) -> "_BatchRun":
        """Validate, plan, and stage ``calls`` without running the engine.

        ``prepare_batch(calls).execute()`` is exactly ``execute_batch``;
        the split exists so the overlap driver (:mod:`repro.core.overlap`)
        can interleave several prepared runs' event loops on one thread.
        """
        if not calls:
            raise InvalidInput("execute_batch needs at least one call")
        for index, call in enumerate(calls):
            self._validate_call(index, call)
        devices = self.scheduler.participating(self.platform.devices)
        control = self.config.control
        if control is not None:
            # Admission-time breaker snapshot: the verdict is frozen for
            # the whole run so scheduling stays a deterministic function
            # of (calls, seed, blocked set) -- see repro.core.control.
            blocked = control.blocked_devices([d.name for d in devices])
            if blocked:
                devices = filter_blocked(devices, blocked)
        rng = np.random.default_rng(self.config.seed)
        obs: Recorder = RunObserver() if self.config.observe else NULL_RECORDER
        units: List[_CallUnit] = []
        next_hlop_id = 0
        for index, call in enumerate(calls):
            unit, next_hlop_id = self._build_unit(
                index, call, devices, rng, next_hlop_id, obs
            )
            units.append(unit)
        check = RunChecker(recorder=obs) if self.config.validate else None
        return _BatchRun(
            runtime=self, units=units, devices=devices, obs=obs, check=check
        )

    def _execute_overlapped(self, calls: Sequence[VOPCall]) -> BatchReport:
        """Run each call as its own job on the wall-clock overlap driver.

        Each call gets a full private run (engine, trace, rng, recorder,
        checker, hlop ids from zero), so its simulated timeline -- and
        therefore its output and makespan -- is exactly what
        ``execute_batch([call])`` produces.  Only *wall-clock* dispatch
        interleaves: while one job waits on backend compute, the driver
        advances another, and deferred submissions batch across jobs.
        """
        from repro.core.overlap import OverlapDriver, OverlapJob

        for index, call in enumerate(calls):
            self._validate_call(index, call)
        jobs = [
            OverlapJob(key=index, prepare=(lambda c=call: self.prepare_batch([c])))
            for index, call in enumerate(calls)
        ]
        OverlapDriver().drive(jobs)
        for job in jobs:
            # Sequential semantics for failures: the earliest call's error
            # wins (back-to-back execution would have raised it first).
            if job.error is not None:
                raise job.error
        return merge_job_reports(
            [job.report for job in jobs], self.platform.energy_model
        )

    # ----------------------------------------------------------------- helpers

    def _validate_call(self, index: int, call: VOPCall) -> None:
        """Reject unusable inputs before any partition planning happens.

        :class:`VOPCall` validates at construction, but ``data`` is a
        plain attribute a caller may have replaced since; re-checking here
        keeps user errors (empty or NaN/Inf inputs) from surfacing later
        as kernel faults or quality anomalies mid-run.
        """
        data = np.asarray(call.data)
        # A read-only array cannot be mutated through any reference, so one
        # successful scan covers every later run of the same call object.
        frozen = isinstance(data, np.ndarray) and not data.flags.writeable
        if frozen and getattr(call, "_finite_checked", None) is data:
            return
        where = f"call {index} ({call.label})"
        if data.size == 0:
            raise InvalidInput(
                f"{where}: input array is empty; nothing to partition", call=index
            )
        if not np.all(np.isfinite(data)):
            raise InvalidInput(
                f"{where}: input contains NaN or infinity; SHMT requires finite "
                "inputs (non-finite values would poison quantization calibration)",
                call=index,
            )
        if frozen:
            call._finite_checked = data

    def _build_unit(
        self,
        index: int,
        call: VOPCall,
        devices: List[Device],
        rng: np.random.Generator,
        next_hlop_id: int,
        obs: Recorder = NULL_RECORDER,
    ) -> "tuple[_CallUnit, int]":
        spec = call.spec
        calibration = spec.calibration
        data = call.data
        partitions = plan_partitions(spec, data.shape, self.config.partition)
        padded = self._padded_input(spec, call)
        total_items = sum(p.n_items for p in partitions)
        ctx = PlanContext(
            spec=spec,
            calibration=calibration,
            partitions=partitions,
            block_for=lambda idx: partitions[idx].input_block(padded),
            devices=devices,
            rng=rng,
            total_items=total_items,
            recorder=obs,
            deadline=self.config.deadline,
        )
        plan = self.scheduler.plan(ctx)
        self._validate_plan(plan, partitions, devices)
        hlops = []
        for partition in partitions:
            idx = partition.index
            hlops.append(
                HLOP(
                    hlop_id=next_hlop_id + idx,
                    opcode=spec.vop,
                    partition=partition,
                    unit_id=index,
                    criticality=plan.criticalities[idx],
                    max_accuracy_rank=plan.max_accuracy_ranks[idx],
                )
            )
        data_fp = call.data_fingerprint()
        halo = spec.halo if padded is not data else 0
        host_context = call.resolve_context()
        # The fingerprint is a pure function of the context's content;
        # memoize per (call, context object) so repeated runs of the same
        # memoized call hash it once.
        memo = getattr(call, "_ctx_key_memo", None)
        if memo is not None and memo[0] is host_context:
            ctx_key = memo[1]
        else:
            ctx_key = fingerprint_value(host_context)
            call._ctx_key_memo = (host_context, ctx_key)
        unit = _CallUnit(
            index=index,
            call=call,
            spec=spec,
            calibration=calibration,
            host_context=host_context,
            padded_input=padded,
            plan=plan,
            hlops=hlops,
            total_items=total_items,
            block_key_prefix=(
                f"blk1:{data_fp}:halo={halo!r}" if data_fp is not None else None
            ),
            ctx_key=ctx_key if ctx_key is not None else "",
            resident_devices=frozenset(call.metadata.get("resident_on") or ()),
        )
        return unit, next_hlop_id + len(partitions)

    def _padded_input(self, spec: KernelSpec, call: VOPCall) -> np.ndarray:
        data = call.data
        if spec.model is not ParallelModel.TILE or not spec.halo:
            return data
        if self.config.cache:
            # Every run of the same input re-pads it identically; share
            # the (frozen) pad through the result cache.  Downstream only
            # ever slices read-only views out of it, same as any cached
            # block, so freezing is safe.
            fp = call.data_fingerprint()
            if fp is not None:
                key = f"pad1:{fp}:halo={spec.halo}"
                cache = result_cache()
                hit = cache.get(key)
                if hit is not None:
                    return hit
                return cache.put(key, replicate_pad(data, spec.halo))
        return replicate_pad(data, spec.halo)

    def _validate_plan(
        self, plan: Plan, partitions: List[Partition], devices: List[Device]
    ) -> None:
        if len(plan.assignment) != len(partitions):
            raise InvalidInput(
                f"plan covers {len(plan.assignment)} partitions, "
                f"expected {len(partitions)}"
            )
        known = {d.name for d in devices}
        unknown = set(plan.assignment) - known
        if unknown:
            raise InvalidInput(f"plan assigns to unknown devices: {sorted(unknown)}")

    def dispatch_overhead(self, calibration, n_hlops: int, total_items: int) -> float:
        """Total SHMT host overhead (dispatch + aggregation) for one VOP.

        The calibrated ``shmt_overhead_fraction`` (x) is anchored at the
        paper's default configuration (2048^2 elements, 64 HLOPs); it is
        split into a per-element component and a fixed per-HLOP component
        so that problem-size sweeps behave mechanistically.
        """
        x = calibration.shmt_overhead_fraction
        fixed_share = self.config.fixed_share
        per_element_total = (1.0 - fixed_share) * x * calibration.baseline_time(total_items)
        reference_baseline = calibration.baseline_time(REFERENCE_ITEM_COUNT)
        fixed_per_hlop = fixed_share * x * reference_baseline / REFERENCE_HLOP_COUNT
        return per_element_total + fixed_per_hlop * n_hlops


def merge_job_reports(reports: List[BatchReport], energy_model) -> BatchReport:
    """Combine per-job :class:`BatchReport`\\ s of an overlapped run.

    Per-job artifacts (outputs, makespans, metrics, traces) pass through
    untouched.  The batch-level view takes the *max* makespan -- the jobs
    ran concurrently in wall time on independent virtual clocks -- sums
    active energy, charges platform idle draw over the longest job only
    (summing per-job idle would double-count the shared platform), and
    concatenates traces and fault logs.  Per-job fault events keep their
    local ``unit_id`` (0): call identity in the merged view comes from
    report order, which follows call order.
    """
    makespan = max(report.makespan for report in reports)
    trace = Trace()
    per_device: Dict[str, float] = {}
    active = 0.0
    for report in reports:
        trace.spans.extend(report.trace.spans)
        trace.markers.extend(report.trace.markers)
        active += report.energy.active_joules
        for cls, joules in report.energy.per_device_active.items():
            per_device[cls] = per_device.get(cls, 0.0) + joules
    energy = EnergyBreakdown(
        active_joules=active,
        idle_joules=energy_model.idle_watts * makespan,
        duration=makespan,
        per_device_active=per_device,
    )
    return BatchReport(
        reports=[r for report in reports for r in report.reports],
        makespan=makespan,
        trace=trace,
        energy=energy,
        steal_count=sum(r.steal_count for r in reports),
        fault_events=sorted(
            (e for r in reports for e in r.fault_events), key=lambda e: e.time
        ),
        retry_count=sum(r.retry_count for r in reports),
        requeue_count=sum(r.requeue_count for r in reports),
        degraded=any(r.degraded for r in reports),
        metrics=None,
    )


class _BatchRun:
    """One simulated run: owns the event loop and per-device state."""

    def __init__(
        self,
        runtime: SHMTRuntime,
        units: List[_CallUnit],
        devices: List[Device],
        obs: Recorder = NULL_RECORDER,
        check: Optional[RunChecker] = None,
    ) -> None:
        self.runtime = runtime
        self.units = units
        self.devices = devices
        self.engine = Engine()
        self.trace = Trace()
        #: Observability sink; a shared no-op unless the config opts in,
        #: so unobserved runs never pay for telemetry.
        self.obs = obs
        #: Invariant checker (``None`` unless the config validates); every
        #: hook site below is gated on ``is not None`` so unchecked runs
        #: pay a single pointer test.
        self.check = check
        if check is not None:
            self.engine.clock_listener = check.observe_clock
        #: Service hooks (``None`` outside the serving layer); every call
        #: site is gated on ``is not None``.
        self.control: Optional[RunControl] = runtime.config.control
        self.states: Dict[str, _DeviceState] = {
            d.name: _DeviceState(device=d) for d in devices
        }
        #: Stable platform position per device: the explicit tie-break for
        #: victim selection, so equally loaded victims sort identically on
        #: every backend and replay (the decision log pins this).
        self._device_order: Dict[str, int] = {
            d.name: position for position, d in enumerate(devices)
        }
        self.steal_count = 0
        self._hlop_units: Dict[int, _CallUnit] = {}
        for unit in units:
            for hlop in unit.hlops:
                self._hlop_units[hlop.hlop_id] = unit
        plan = runtime.config.fault_plan
        if plan is None:
            plan = getattr(runtime.platform, "fault_plan", None)
        #: ``None`` when no (non-empty) fault plan is active; every fault
        #: branch in the run loop is gated on this so fault-free runs are
        #: bit-identical to the fault-unaware runtime.
        self.faults: Optional[FaultInjector] = (
            FaultInjector(plan, runtime.config.seed, recorder=obs)
            if plan is not None and not plan.empty
            else None
        )
        self.fault_events: List[FaultEvent] = []
        self.retry_count = 0
        self.requeue_count = 0
        #: Fusion pass (see :mod:`repro.exec.fuse`): active only when the
        #: config asks for it, the backend actually fuses, and no fault
        #: plan is live -- injected faults need per-attempt submission
        #: interleaving that chain lookahead would reorder.
        backend = runtime.backend
        self._fuse = (
            runtime.config.fuse
            and self.faults is None
            and isinstance(backend, FusingBackend)
        )
        #: Cross-job submission batcher (set by the overlap driver when
        #: this run participates in an overlapped batch with fusion on).
        #: ``None`` -- the default -- submits straight to the backend.
        self.batcher: Optional[Any] = None
        #: Handles pre-computed by an earlier chain, keyed by hlop_id.
        #: Consumed when the member HLOP starts; discarded (and recomputed
        #: fresh) if a steal or re-queue moved it to another device, since
        #: the prefused result is bound to the device it was submitted on.
        self._prefused: Dict[int, "tuple[str, TaskHandle]"] = {}
        if isinstance(backend, FusingBackend):
            backend.on_unit = (
                (
                    lambda size: self.obs.count(
                        "fuse_batched_submissions_total", 1
                    )
                )
                if self._fuse and self.obs.enabled
                else None
            )

    def _unit_of(self, hlop: HLOP) -> _CallUnit:
        return self._hlop_units[hlop.hlop_id]

    # ------------------------------------------------------------------- run

    def execute(self) -> BatchReport:
        self.begin()
        deadline = self.runtime.config.deadline
        if deadline is None:
            self.engine.run()
        else:
            # Cooperative cancellation: simulate up to the budget, then
            # audit completion.  Events past the deadline stay unfired, so
            # a cancelled run never charges work beyond the budget.
            self.engine.run(until=deadline)
        return self.finish()

    def begin(self) -> None:
        """Charge prologues and seed the event heap (no events fire yet).

        ``begin()`` + drain the engine + ``finish()`` is exactly
        :meth:`execute`; the overlap driver uses the split to pump several
        runs' engines event-by-event on one thread.
        """
        host_free = 0.0
        for unit in self.units:
            host_free = self._charge_unit_prologue(unit, host_free)
            unit.ready_time = host_free
            self._enqueue_unit(unit)
        if self.faults is not None:
            for state in self.states.values():
                death = self.faults.death_time(state.device.name)
                if death is not None:
                    self.engine.schedule_at(
                        death,
                        lambda s=state: self._on_device_death(s),
                        kind=EventKind.DEVICE_DEATH,
                    )

    def finish(self) -> BatchReport:
        """Audit, aggregate, and report once the event heap is drained."""
        deadline = self.runtime.config.deadline
        if deadline is not None:
            self._check_deadline(deadline)
        self._charge_epilogues()
        report = self._report()
        if self.check is not None:
            self._finish_validation(report)
        return report

    def _check_deadline(self, deadline: float) -> None:
        """Cancel the run if device work did not finish within the budget.

        The HLOPs a cancelled run leaves queued or running are reclaimed
        with the run itself: nothing past this point executes, and the
        caller (the serving layer) owns the cleanup.
        """
        unfinished = [
            h.hlop_id
            for unit in self.units
            for h in unit.hlops
            if h.status is not HLOPStatus.DONE
        ]
        if not unfinished:
            return
        total = sum(len(unit.hlops) for unit in self.units)
        raise DeadlineExceeded(
            f"run exceeded its deadline budget of {deadline:.6f}s simulated: "
            f"{total - len(unfinished)}/{total} HLOPs done at cancellation",
            deadline=deadline,
            completed=total - len(unfinished),
            total=total,
        )

    def _finish_validation(self, report: BatchReport) -> None:
        """Post-run invariant audit; raises on any recorded violation.

        Runs after :meth:`_report` so the audit sees exactly the artifacts
        callers get (aggregated outputs, batch makespan, batch energy) --
        the report's metrics snapshot shares the violation list by
        reference, so recorded violations appear on it too.
        """
        self.check.check_run(
            self.units,
            self.trace,
            report.makespan,
            energy=report.energy,
            energy_model=self.runtime.platform.energy_model,
            devices=self.devices,
            horizon=self.engine.now,
        )
        cache = self.runtime.backend.cache
        if cache is not None:
            try:
                cache.self_check()
            except CacheIntegrityError as error:
                self.check.record(
                    "cache-integrity",
                    "cache",
                    time=report.makespan,
                    detail=str(error),
                )
        self.check.raise_if_violated()

    def _enqueue_unit(self, unit: _CallUnit) -> None:
        for hlop in unit.hlops:
            state = self.states[unit.plan.assignment[hlop.partition.index]]
            hlop.mark_queued(unit.ready_time)
            state.queue.append(hlop)
            if self.check is not None:
                self.check.on_dispatch(hlop.hlop_id, state.device.name, unit.ready_time)
            if self.obs.enabled:
                self.obs.decision(
                    DecisionKind.DISPATCH,
                    state.device.name,
                    time=unit.ready_time,
                    hlop_id=hlop.hlop_id,
                    unit_id=unit.index,
                    why="plan assignment",
                    predicted_seconds=state.device.service_time(
                        unit.calibration, hlop.n_items, now=unit.ready_time
                    ),
                )
        for state in self.states.values():
            state.transfer_free = max(state.transfer_free, 0.0)
            self.engine.schedule_at(
                unit.ready_time,
                lambda s=state: self._try_start(s),
                kind=EventKind.DISPATCH,
            )

    def _charge_unit_prologue(self, unit: _CallUnit, start: float) -> float:
        """Serial host work before a unit's HLOPs become available."""
        t = start
        plan = unit.plan
        tag = f"u{unit.index}:" if len(self.units) > 1 else ""
        if plan.sampling_seconds > 0:
            self.trace.add_span("host", t, t + plan.sampling_seconds, f"{tag}sampling", "host")
            self.obs.phase("sampling", "host", plan.sampling_seconds)
            t += plan.sampling_seconds
        if plan.extra_host_seconds > 0:
            self.trace.add_span(
                "host", t, t + plan.extra_host_seconds, f"{tag}canary-execution", "host"
            )
            self.obs.phase("canary", "host", plan.extra_host_seconds)
            t += plan.extra_host_seconds
        if self.runtime.scheduler.charges_runtime_overhead:
            total = self.runtime.dispatch_overhead(
                unit.calibration, len(unit.hlops), unit.total_items
            )
            unit.dispatch_seconds = total
            pre = total / 2.0
            self.trace.add_span("host", t, t + pre, f"{tag}hlop-dispatch", "host")
            self.obs.phase("dispatch", "host", pre)
            t += pre
        return t

    def _charge_epilogues(self) -> None:
        """Per-unit aggregation on the (serial) host, in completion order."""
        host_free = max(
            (u.ready_time for u in self.units), default=0.0
        )
        device_finish = {
            unit.index: max(
                (h.finish_time for h in unit.hlops if h.finish_time is not None),
                default=self.engine.now,
            )
            for unit in self.units
        }
        for unit in sorted(self.units, key=lambda u: device_finish[u.index]):
            start = max(device_finish[unit.index], host_free)
            if self.runtime.scheduler.charges_runtime_overhead:
                post = unit.dispatch_seconds / 2.0
                tag = f"u{unit.index}:" if len(self.units) > 1 else ""
                self.trace.add_span("host", start, start + post, f"{tag}aggregation", "host")
                self.obs.phase("aggregation", "host", post)
                unit.finish_time = start + post
                host_free = unit.finish_time
            else:
                unit.finish_time = start
                host_free = max(host_free, start)

    # ------------------------------------------------------------- scheduling

    def _try_start(self, state: _DeviceState) -> None:
        if state.running or state.dead:
            return
        hlop = self._next_hlop(state)
        if hlop is None:
            return
        self._run_hlop(state, hlop)

    def _next_hlop(self, state: _DeviceState) -> Optional[HLOP]:
        while state.queue:
            candidate = state.queue.popleft()
            if self._device_eligible(state.device, candidate):
                return candidate
            # The device cannot legally run its own queued HLOP (e.g. an
            # over-sized partition for the TPU): bounce it to an exact device.
            fallback = self._fallback_state(state, candidate)
            candidate.mark_queued(self.engine.now)
            fallback.queue.append(candidate)
            self.engine.schedule(
                0.0, lambda s=fallback: self._try_start(s), kind=EventKind.DISPATCH
            )
        if self.runtime.scheduler.steals:
            return self._steal_for(state)
        return None

    def _fallback_state(self, state: _DeviceState, hlop: HLOP) -> _DeviceState:
        exact = [
            s
            for s in self.states.values()
            if s.device.accuracy_rank == 0 and s is not state and not s.dead
        ]
        if exact:
            return min(exact, key=lambda s: len(s.queue))
        if self.faults is not None:
            # No exact device left: degrade instead of crashing the run.
            survivors = [s for s in self.states.values() if not s.dead and s is not state]
            relaxed = self._degrade_for(hlop, survivors)
            if relaxed:
                return min(relaxed, key=lambda s: len(s.queue))
        raise RuntimeError(
            f"no device can execute an HLOP rejected by {state.device.name}"
        )

    def _device_eligible(self, device: Device, hlop: HLOP) -> bool:
        return hlop.allows_rank(device.accuracy_rank) and self._memory_ok(device, hlop)

    def _memory_ok(self, device: Device, hlop: HLOP) -> bool:
        device_memory = getattr(device, "device_memory_bytes", None)
        if device_memory is None:
            return True
        unit = self._unit_of(hlop)
        return hlop.n_items * unit.call.data.itemsize <= device_memory

    def _steal_for(self, state: _DeviceState) -> Optional[HLOP]:
        """Steal a rate-proportional batch from the most-loaded legal victim.

        Two departures from textbook steal-half, both forced by this
        platform:

        * A *batch* is taken (not one HLOP) so the thief's transfer engine
          can prefetch the rest of the batch while the first stolen HLOP
          computes; stealing singles would serialize a transfer stall in
          front of every stolen HLOP.
        * The batch size is proportional to the thief's relative
          throughput, not half the queue.  QAWS steals are one-directional
          (an approximate device may never re-steal from an exact one), so
          an exact device that over-steals strands work it is slow at --
          rate-proportional splitting is the stable division the paper's
          stealing converges to.
        """
        thief = state.device
        # Most-loaded first; ties break on stable platform device order.
        # Insertion-ordered dicts made this deterministic by accident --
        # the explicit key guarantees serial and pool backends (and any
        # future state-store change) replay identical steal decisions.
        victims = sorted(
            (s for s in self.states.values() if s is not state and s.queue and not s.dead),
            key=lambda s: (-len(s.queue), self._device_order[s.device.name]),
        )
        for victim in victims:
            eligible = [
                position
                for position in range(len(victim.queue))
                if self._device_eligible(thief, victim.queue[position])
                and thief.name not in victim.queue[position].failed_devices
                # An HLOP awaiting an exact recompute of a corrupted
                # result may not bounce back to an approximate device.
                and not (
                    victim.queue[position].exact_recompute
                    and thief.accuracy_rank > 0
                )
                and self.runtime.scheduler.can_steal(
                    thief, victim.device, victim.queue[position]
                )
            ]
            if not eligible:
                continue
            # Rate the share by the kernel the thief is most likely to take.
            calibration = self._unit_of(victim.queue[eligible[-1]]).calibration
            thief_rate = calibration.device_rate(thief.device_class)
            victim_rate = calibration.device_rate(victim.device.device_class)
            share = thief_rate / (thief_rate + victim_rate)
            if self.runtime.config.split_on_steal and len(eligible) == 1:
                # Endgame: one stealable HLOP left on this victim --
                # re-partition it rate-proportionally (section 3.4) instead
                # of moving it wholesale.
                split = self._split_steal(state, victim, eligible[0], share)
                if split is not None:
                    return split
            take = min(len(eligible), max(1, int(round(len(eligible) * share))))
            # Take from the tail: work farthest from execution on the victim.
            taken_positions = eligible[-take:]
            stolen = [victim.queue[position] for position in taken_positions]
            victim_before = len(victim.queue)
            thief_before = len(state.queue)
            for position in reversed(taken_positions):
                del victim.queue[position]
            now = self.engine.now
            for hlop in stolen:
                hlop.steals += 1
                hlop.mark_queued(now)
                self.steal_count += 1
                self._unit_of(hlop).steal_count += 1
                if self.obs.enabled:
                    self.obs.decision(
                        DecisionKind.STEAL,
                        thief.name,
                        time=now,
                        hlop_id=hlop.hlop_id,
                        unit_id=self._unit_of(hlop).index,
                        why=f"idle thief took work from {victim.device.name}",
                        predicted_seconds=thief.service_time(
                            self._unit_of(hlop).calibration, hlop.n_items, now=now
                        ),
                    )
            self.trace.add_marker(
                thief.name,
                now,
                f"steal:{len(stolen)}<-{victim.device.name}",
            )
            first, rest = stolen[0], stolen[1:]
            state.queue.extend(rest)
            if self.check is not None:
                self.check.on_steal(
                    thief.name,
                    victim.device.name,
                    taken=len(stolen),
                    victim_before=victim_before,
                    victim_after=len(victim.queue),
                    thief_before=thief_before,
                    thief_after=len(state.queue),
                    time=now,
                )
            return first
        return None

    def _split_steal(
        self,
        state: _DeviceState,
        victim: _DeviceState,
        position: int,
        share: float,
    ) -> Optional[HLOP]:
        """Re-partition a queued HLOP so the thief takes ``share`` of it.

        Returns the thief's child HLOP, leaving the victim's child in
        place, or ``None`` when the partition admits no legal split.
        """
        parent = victim.queue[position]
        unit = self._unit_of(parent)
        pieces = split_partition(
            unit.spec, parent.partition, share, self.runtime.config.partition
        )
        if pieces is None:
            return None
        thief_part, victim_part = pieces
        now = self.engine.now

        def _child(part: Partition, hlop_id: int) -> HLOP:
            child = HLOP(
                hlop_id=hlop_id,
                opcode=parent.opcode,
                partition=part,
                unit_id=parent.unit_id,
                criticality=parent.criticality,
                true_criticality=parent.true_criticality,
                max_accuracy_rank=parent.max_accuracy_rank,
            )
            child.mark_queued(now)
            child.steals = parent.steals + 1
            return child

        next_id = max(self._hlop_units) + 1
        thief_child = _child(thief_part, next_id)
        victim_child = _child(victim_part, next_id + 1)
        unit.hlops.remove(parent)
        unit.hlops.extend([thief_child, victim_child])
        del self._hlop_units[parent.hlop_id]
        self._hlop_units[thief_child.hlop_id] = unit
        self._hlop_units[victim_child.hlop_id] = unit
        del victim.queue[position]
        victim.queue.append(victim_child)
        self.steal_count += 1
        unit.steal_count += 1
        if self.check is not None:
            self.check.on_split(
                parent.hlop_id,
                [thief_child.hlop_id, victim_child.hlop_id],
                state.device.name,
                now,
            )
        if self.obs.enabled:
            self.obs.decision(
                DecisionKind.SPLIT,
                state.device.name,
                time=now,
                hlop_id=parent.hlop_id,
                unit_id=unit.index,
                why=(
                    f"endgame split of hlop {parent.hlop_id} with "
                    f"{victim.device.name} (share {share:.3f})"
                ),
            )
        self.trace.add_marker(
            state.device.name,
            now,
            f"split-steal:{parent.hlop_id}<-{victim.device.name}",
        )
        self.engine.schedule(
            0.0, lambda s=victim: self._try_start(s), kind=EventKind.DISPATCH
        )
        return thief_child

    # -------------------------------------------------------------- execution

    def _run_hlop(self, state: _DeviceState, hlop: HLOP) -> None:
        device = state.device
        unit = self._unit_of(hlop)
        now = self.engine.now
        transfer = self.runtime.platform.interconnect.transfer_time(
            unit.calibration, device.device_class, hlop.n_items
        )
        if transfer > 0 and device.name in unit.resident_devices:
            # Inter-kernel buffer reuse: the input was produced on this
            # very device by the upstream DAG step, so there is no
            # host->device movement to simulate.  Only the declared
            # resident devices skip it -- stolen/requeued HLOPs landing
            # elsewhere pay the full transfer.
            transfer = 0.0
            unit.transfers_waived += 1
            if self.obs.enabled:
                self.obs.count(
                    "dag_transfers_waived_total", 1, device=device.name
                )
        if self.runtime.scheduler.overlap_transfers:
            transfer_start = max(hlop.enqueue_time, state.transfer_free)
            transfer_done = transfer_start + transfer
            state.transfer_free = transfer_done
            compute_start = max(now, transfer_done)
        else:
            transfer_start = now
            transfer_done = now + transfer
            compute_start = transfer_done
        if transfer > 0:
            self.trace.add_span(
                device.name,
                transfer_start,
                transfer_done,
                f"xfer:{hlop.hlop_id}",
                "transfer",
            )
            self.obs.phase("transfer", device.name, transfer)
        wait = compute_start - now
        # Accumulate across attempts: a retried/migrated HLOP's earlier
        # waits are real stall time, not state to overwrite.
        hlop.transfer_wait += wait
        state.wait_seconds += wait
        unit.wait_seconds += wait
        if self.obs.enabled:
            self.obs.observe("transfer_wait_seconds", wait, device=device.name)

        predicted = device.service_time(unit.calibration, hlop.n_items, now=compute_start)
        service = predicted
        if self.faults is not None:
            # Injected straggler slowdown is invisible to the prediction,
            # which is exactly what makes the watchdog necessary.
            service *= self.faults.slowdown(device.name, compute_start)
        compute_done = compute_start + service
        state.running = True
        hlop.status = HLOPStatus.RUNNING
        hlop.attempts += 1

        inject = self.faults is not None and not hlop.exact_recompute
        if inject and self.faults.attempt_fails(device.name, hlop.hlop_id, hlop.attempts):
            # The device burns the full service time, then reports failure.
            done_event = self.engine.schedule_at(
                compute_done,
                lambda: self._on_attempt_failed(state, hlop, compute_start, compute_done),
                kind=EventKind.FAULT,
            )
        else:
            # Deferred compute: the numeric work is a pure task handed to
            # the backend; only the *handle* enters the event loop, and the
            # result joins at the simulated completion event below.  The
            # corruption verdict stays at submission (same injector call
            # order as the inline runtime); the poisoning itself needs the
            # result, so it applies at the join.
            handle = self._submit_numeric(state, hlop, unit)
            corrupt = inject and self.faults.corrupts(
                device.name, hlop.hlop_id, hlop.attempts
            )
            attempt = hlop.attempts
            done_event = self.engine.schedule_at(
                compute_done,
                lambda: self._on_complete(
                    state,
                    hlop,
                    compute_start,
                    compute_done,
                    handle,
                    corrupt=corrupt,
                    attempt=attempt,
                ),
                kind=EventKind.COMPUTE_DONE,
                # The overlap driver peeks this to see whether the result
                # has landed before firing the completion event; the
                # sequential run loop never reads payloads.
                payload=handle,
            )
        watchdog = None
        if self.faults is not None:
            # Progressive escalation: every timeout this HLOP has already
            # suffered doubles the next deadline, so a straggler that is
            # the only eligible device still finishes (slowly) instead of
            # timing out forever.
            escalation = 2.0 ** min(hlop.timeout_count, 30)
            deadline = compute_start + (
                self.runtime.config.watchdog_factor
                * device.watchdog_margin
                * escalation
                * predicted
            )
            watchdog = self.engine.schedule_at(
                deadline,
                lambda: self._on_watchdog(state, hlop),
                kind=EventKind.TIMEOUT,
            )
        state.current = _Running(
            hlop=hlop,
            start=compute_start,
            done_event=done_event,
            watchdog_event=watchdog,
            predicted=predicted,
        )

    def _submit_numeric(
        self, state: _DeviceState, hlop: HLOP, unit: _CallUnit
    ) -> TaskHandle:
        """Hand the HLOP's numeric execution to the compute backend.

        The task is pure: the block is a read-only-by-convention view of
        the padded input, and any stochastic component (the NPU residual)
        derives from the explicit per-HLOP seed, so results are identical
        whichever backend -- or cache -- serves them.

        With fusion active this is also where chains form: the starting
        HLOP plus the compatible run behind it in the device queue go to
        the backend as one group, and the ride-along members' handles are
        parked in :attr:`_prefused` until each member starts.  Timing is
        untouched -- every member still gets its own service time and
        completion event.
        """
        device = state.device
        if self.control is not None:
            # Checkpoint resume: a journaled result stands in for the
            # computation.  Timing is untouched (service times are model
            # predictions), so the replayed timeline is bit-identical.
            stored = self.control.stored_result(hlop.hlop_id)
            if stored is not None:
                return ResolvedHandle(stored, cached=True)
        if not self._fuse:
            return self.runtime.backend.submit(self._build_task(device, hlop, unit))
        submit_group = (
            self.batcher.submit_group
            if self.batcher is not None
            else self.runtime.backend.submit_group
        )
        prefused = self._prefused.pop(hlop.hlop_id, None)
        if prefused is not None:
            submitted_on, handle = prefused
            if submitted_on == device.name:
                return handle
            # A steal or re-queue moved the HLOP since its chain formed:
            # the prefused result belongs to the old device's numeric
            # path.  Drop it and compute fresh on the actual device.
        chain: List[HLOP] = [hlop]
        max_chain = self.runtime.backend.config.max_chain
        for candidate in state.queue:
            if len(chain) >= max_chain:
                break
            if candidate.hlop_id in self._prefused:
                continue
            if (
                self.control is not None
                and self.control.stored_result(candidate.hlop_id) is not None
            ):
                continue
            if not self._device_eligible(device, candidate):
                continue
            chain.append(candidate)
        tasks = [
            self._build_task(device, member, self._unit_of(member))
            for member in chain
        ]
        handles = submit_group(tasks)
        if len(chain) > 1:
            for member, member_handle in zip(chain[1:], handles[1:]):
                member.fused = True
                self._prefused[member.hlop_id] = (device.name, member_handle)
            hlop.fused = True
            if self.obs.enabled:
                self.obs.count("fuse_chains_formed_total", 1, device=device.name)
                self.obs.count(
                    "fuse_hlops_elided_total", len(chain) - 1, device=device.name
                )
        return handles[0]

    def _build_task(
        self, device: Device, hlop: HLOP, unit: _CallUnit
    ) -> ComputeTask:
        block = hlop.partition.input_block(unit.padded_input)
        seed = (self.runtime.config.seed * 1_000_003 + hlop.hlop_id) % (2**31 - 1)
        prefix = unit.block_key_prefix
        return ComputeTask(
            device=device,
            compute=unit.spec.compute,
            block=block,
            block_fingerprint=(
                f"{prefix}:{hlop.partition.in_slices!r}" if prefix else None
            ),
            ctx=unit.host_context,
            ctx_fingerprint=unit.ctx_key,
            error_scale=unit.calibration.npu_error_scale,
            seed=seed,
            channel_axis=unit.spec.channel_axis,
            quantize_output=not unit.spec.reduces,
            tensor_compute=unit.spec.tensor_compute,
            kernel=unit.spec.name,
            hlop_id=hlop.hlop_id,
        )

    def _on_complete(
        self,
        state: _DeviceState,
        hlop: HLOP,
        start: float,
        finish: float,
        handle: TaskHandle,
        corrupt: bool = False,
        attempt: int = 0,
    ) -> None:
        device = state.device
        unit = self._unit_of(hlop)
        predicted = state.current.predicted if state.current is not None else 0.0
        self._clear_running(state)
        try:
            result = handle.result()
        except DeviceFault as fault:
            # The backend lost the worker computing this HLOP (crashed
            # process, broken pool).  Surface it as a structured fault and
            # recover through the standard retry/re-queue machinery.
            self._on_worker_crash(state, hlop, start, finish, fault)
            return
        if corrupt:
            result = self.faults.corrupt_output(
                result, device.name, hlop.hlop_id, attempt
            )
        if self.obs.enabled and self.runtime.config.cache:
            self.obs.count(
                "exec_cache_hits_total" if handle.cached else "exec_cache_misses_total",
                1,
                device=device.name,
            )
        if self.faults is not None and not np.all(np.isfinite(result)):
            if not hlop.exact_recompute:
                # Output guard: poisoned result -- discard it and recompute
                # once on an exact device before accepting anything.
                self._recover_corrupt(state, hlop, start, finish)
                return
            # The exact recompute is *also* non-finite: the kernel itself
            # produced it, so accept the result with a quality warning.
            hlop.degraded = True
            unit.degraded = True
            self._record(
                FaultKind.DEGRADED,
                device.name,
                hlop,
                detail="non-finite output accepted after exact recompute",
            )
        self.trace.add_span(device.name, start, finish, f"hlop:{hlop.hlop_id}", "compute")
        state.busy_seconds += finish - start
        state.items_done += hlop.n_items
        cls = device.device_class
        unit.busy_seconds += finish - start
        unit.busy_by_class[cls] = unit.busy_by_class.get(cls, 0.0) + (finish - start)
        unit.items_by_class[cls] = unit.items_by_class.get(cls, 0) + hlop.n_items
        state.running = False
        hlop.mark_done(device.name, start, finish, result)
        if self.control is not None:
            self.control.on_attempt(device.name, True)
            self.control.on_hlop_result(hlop.hlop_id, result)
        if self.check is not None:
            self.check.on_complete(hlop.hlop_id, device.name, start, finish, unit.index)
        if self.obs.enabled:
            self.obs.phase("compute", device.name, finish - start)
            self.obs.decision(
                DecisionKind.COMPLETE,
                device.name,
                time=finish,
                hlop_id=hlop.hlop_id,
                unit_id=unit.index,
                why="result accepted",
                predicted_seconds=predicted,
                actual_seconds=finish - start,
            )
            self.obs.count("hlops_completed_total", 1, device=device.name)
            self.obs.count("items_completed_total", hlop.n_items, device_class=cls)
            self.obs.observe("service_seconds", finish - start, device=device.name)
            if predicted > 0:
                self.obs.observe(
                    "service_prediction_ratio",
                    (finish - start) / predicted,
                    device=device.name,
                )
        self._try_start(state)

    # --------------------------------------------------- faults and recovery

    def _clear_running(self, state: _DeviceState) -> None:
        """Disarm the device's in-flight attempt (watchdog included)."""
        current = state.current
        if current is not None:
            self.engine.cancel(current.done_event)
            self.engine.cancel(current.watchdog_event)
        state.current = None

    def _record(
        self,
        kind: FaultKind,
        device_name: str,
        hlop: Optional[HLOP] = None,
        detail: str = "",
    ) -> None:
        """Append a fault event to the run log and mark it on the trace."""
        now = self.engine.now
        hlop_id = hlop.hlop_id if hlop is not None else None
        unit_id = self._unit_of(hlop).index if hlop is not None else None
        event = FaultEvent(
            time=now,
            kind=kind,
            device=device_name,
            hlop_id=hlop_id,
            unit_id=unit_id,
            detail=detail,
        )
        self.fault_events.append(event)
        self.obs.fault(event)
        if self.control is not None and kind in _BREAKER_FAILURE_KINDS:
            self.control.on_attempt(device_name, False, kind=kind.value)
        if kind is FaultKind.DEGRADED and self.obs.enabled:
            # Quality degradation is a scheduling decision as much as a
            # fault: mirror it into the decision log so chaos runs and
            # clean runs share one accounting of who relaxed what and why.
            self.obs.decision(
                DecisionKind.DEGRADE,
                device_name,
                time=now,
                hlop_id=hlop_id,
                unit_id=unit_id,
                why=detail,
            )
        label = f"fault:{kind.value}" + (f":{hlop_id}" if hlop_id is not None else "")
        self.trace.add_marker(device_name, now, label)

    def _charge_wasted(
        self, state: _DeviceState, hlop: HLOP, start: float, finish: float
    ) -> None:
        """Account a failed attempt's device time (busy, but no items done).

        The time shows up in the trace under the ``faulted`` category so
        Gantt output and the energy model both see it; the partition's
        items are *not* credited, since the work must run again.
        """
        unit = self._unit_of(hlop)
        start = min(start, finish)
        if finish > start:
            self.trace.add_span(
                state.device.name, start, finish, f"hlop:{hlop.hlop_id}", "faulted"
            )
        elapsed = finish - start
        state.busy_seconds += elapsed
        unit.busy_seconds += elapsed
        cls = state.device.device_class
        unit.busy_by_class[cls] = unit.busy_by_class.get(cls, 0.0) + elapsed
        state.running = False
        if elapsed > 0:
            self.obs.phase("faulted", state.device.name, elapsed)

    def _on_worker_crash(
        self,
        state: _DeviceState,
        hlop: HLOP,
        start: float,
        finish: float,
        fault: DeviceFault,
    ) -> None:
        """A backend worker died mid-task; retry/re-queue like any fault."""
        self._charge_wasted(state, hlop, start, finish)
        self._record(
            FaultKind.WORKER_CRASH,
            state.device.name,
            hlop,
            detail=f"attempt {hlop.attempts}: {fault}",
        )
        self._retry_or_requeue(state, hlop)
        self._try_start(state)

    def _on_attempt_failed(
        self, state: _DeviceState, hlop: HLOP, start: float, finish: float
    ) -> None:
        """A transient fault surfaced when the attempt's result was due."""
        self._clear_running(state)
        self._charge_wasted(state, hlop, start, finish)
        self._record(
            FaultKind.TRANSIENT,
            state.device.name,
            hlop,
            detail=f"attempt {hlop.attempts} failed",
        )
        self._retry_or_requeue(state, hlop)
        self._try_start(state)

    def _on_watchdog(self, state: _DeviceState, hlop: HLOP) -> None:
        """The per-attempt deadline fired while the HLOP was still running."""
        current = state.current
        if current is None or current.hlop is not hlop:
            return  # stale deadline; the attempt already resolved
        now = self.engine.now
        self.engine.cancel(current.done_event)
        state.current = None
        hlop.timeout_count += 1
        self._charge_wasted(state, hlop, current.start, now)
        self._record(
            FaultKind.TIMEOUT,
            state.device.name,
            hlop,
            detail=f"attempt {hlop.attempts} exceeded watchdog deadline",
        )
        self._retry_or_requeue(state, hlop, timed_out=True)
        self._try_start(state)

    def _on_device_death(self, state: _DeviceState) -> None:
        """Planned permanent device failure: drain and redistribute."""
        if state.dead:
            return
        now = self.engine.now
        state.dead = True
        device = state.device
        self._record(FaultKind.DEVICE_DEATH, device.name, detail="device died")
        lost: List[HLOP] = []
        current = state.current
        if current is not None:
            self._clear_running(state)
            self._charge_wasted(state, current.hlop, min(current.start, now), now)
            lost.append(current.hlop)
        state.running = False
        lost.extend(state.queue)
        state.queue.clear()
        self._degrade_unreachable()
        for hlop in lost:
            hlop.status = HLOPStatus.QUEUED
            self._requeue_elsewhere(state, hlop, reason="device death")

    def _degrade_unreachable(self) -> None:
        """Relax accuracy pins that no surviving device can satisfy.

        Called after a death: when the last rank-0 (or generally
        best-rank) device dies, HLOPs pinned below the best surviving rank
        would strand the run.  Quality degrades instead -- each affected
        HLOP is relaxed to the best surviving rank and the report carries
        the warning.
        """
        live = [s for s in self.states.values() if not s.dead]
        if not live:
            return
        best_live_rank = min(s.device.accuracy_rank for s in live)
        if best_live_rank == 0:
            return  # an exact device survives; every pin stays satisfiable
        for unit in self.units:
            for hlop in unit.hlops:
                if hlop.status is HLOPStatus.DONE:
                    continue
                rank = hlop.max_accuracy_rank
                if rank is not None and rank < best_live_rank:
                    hlop.max_accuracy_rank = best_live_rank
                    hlop.degraded = True
                    unit.degraded = True
                    self._record(
                        FaultKind.DEGRADED,
                        hlop.device_name or "platform",
                        hlop,
                        detail=f"accuracy pin relaxed {rank}->{best_live_rank}",
                    )

    def _degrade_for(
        self, hlop: HLOP, candidates: List[_DeviceState]
    ) -> List[_DeviceState]:
        """Relax ``hlop``'s accuracy pin so one of ``candidates`` can run it.

        Returns the now-eligible states (empty when nothing helps, e.g.
        every candidate fails the memory check, which no degradation can
        fix).
        """
        fits = [s for s in candidates if self._memory_ok(s.device, hlop)]
        if not fits:
            return []
        best_rank = max(hlop.max_accuracy_rank or 0, min(s.device.accuracy_rank for s in fits))
        if hlop.max_accuracy_rank is None or hlop.max_accuracy_rank >= best_rank:
            return [s for s in fits if hlop.allows_rank(s.device.accuracy_rank)]
        self._record(
            FaultKind.DEGRADED,
            hlop.device_name or "platform",
            hlop,
            detail=f"accuracy pin relaxed {hlop.max_accuracy_rank}->{best_rank}",
        )
        hlop.max_accuracy_rank = best_rank
        hlop.degraded = True
        self._unit_of(hlop).degraded = True
        return [s for s in fits if hlop.allows_rank(s.device.accuracy_rank)]

    def _retry_or_requeue(
        self, state: _DeviceState, hlop: HLOP, timed_out: bool = False
    ) -> None:
        """Recovery policy for a failed/timed-out attempt.

        Retry on the same device with capped exponential backoff while the
        retry budget lasts; then migrate to the least-loaded survivor.
        Exhausting the budget marks the device as bad *for this HLOP*, so
        re-queueing and stealing stop sending the work back there.
        """
        config = self.runtime.config
        if not state.dead and hlop.retries < config.max_retries:
            hlop.retries += 1
            unit = self._unit_of(hlop)
            unit.retry_count += 1
            self.retry_count += 1
            backoff = min(
                config.retry_backoff_cap,
                config.retry_backoff * (2.0 ** (hlop.retries - 1)),
            )
            self._record(
                FaultKind.RETRY,
                state.device.name,
                hlop,
                detail=f"retry {hlop.retries}/{config.max_retries} after {backoff:.6f}s",
            )
            if self.obs.enabled:
                self.obs.decision(
                    DecisionKind.RETRY,
                    state.device.name,
                    time=self.engine.now,
                    hlop_id=hlop.hlop_id,
                    unit_id=unit.index,
                    why=(
                        f"{'timeout' if timed_out else 'transient failure'}; "
                        f"retry {hlop.retries}/{config.max_retries} "
                        f"after {backoff:.6f}s backoff"
                    ),
                )
            hlop.mark_queued(self.engine.now + backoff)

            def _deliver(s: _DeviceState = state, h: HLOP = hlop) -> None:
                if s.dead:
                    self._requeue_elsewhere(s, h, reason="device died during backoff")
                    return
                s.queue.appendleft(h)
                self._try_start(s)

            self.engine.schedule(backoff, _deliver, kind=EventKind.RETRY)
            return
        # The device burned the whole retry budget on this HLOP -- whether
        # by hanging or by failing every attempt, stop sending it back.
        hlop.failed_devices.add(state.device.name)
        self._requeue_elsewhere(state, hlop, reason="retries exhausted")

    def _requeue_elsewhere(
        self,
        origin: _DeviceState,
        hlop: HLOP,
        reason: str = "",
        prefer_exact: bool = False,
    ) -> None:
        """Move ``hlop`` to the least-loaded eligible surviving device.

        Preference order: surviving devices that have not burned their
        retry budget on this HLOP, then the (still-live) origin, then
        burned survivors as a last resort, then quality degradation.
        Nothing left = the run cannot finish this HLOP; fail loudly.
        """
        if hlop.requeues >= self.runtime.config.max_requeues:
            raise RuntimeError(
                f"HLOP {hlop.hlop_id} exceeded max_requeues="
                f"{self.runtime.config.max_requeues}; no device can make "
                f"progress under the active fault plan ({reason or 'device fault'})"
            )
        survivors = [s for s in self.states.values() if not s.dead and s is not origin]
        if prefer_exact:
            exact = [
                s
                for s in self.states.values()
                if not s.dead
                and s.device.accuracy_rank == 0
                and self._memory_ok(s.device, hlop)
            ]
            if exact:
                survivors = exact
        eligible = [
            s
            for s in survivors
            if self._device_eligible(s.device, hlop)
            and s.device.name not in hlop.failed_devices
        ]
        if not eligible and not origin.dead and self._device_eligible(origin.device, hlop):
            eligible = [origin]  # nowhere else to go: stay local
        if not eligible:
            # Even persistently slow devices beat abandoning the work.
            eligible = [s for s in survivors if self._device_eligible(s.device, hlop)]
        if not eligible:
            eligible = self._degrade_for(
                hlop, [s for s in self.states.values() if not s.dead]
            )
        if not eligible:
            raise RuntimeError(
                f"no surviving device can execute HLOP {hlop.hlop_id} "
                f"({reason or 'device fault'})"
            )
        target = min(eligible, key=lambda s: len(s.queue))
        hlop.requeues += 1
        unit = self._unit_of(hlop)
        unit.requeue_count += 1
        self.requeue_count += 1
        now = self.engine.now
        if self.check is not None:
            self.check.on_requeue(hlop.hlop_id, target.device.name, now)
        self._record(
            FaultKind.REQUEUE,
            origin.device.name,
            hlop,
            detail=f"-> {target.device.name}" + (f" ({reason})" if reason else ""),
        )
        if self.obs.enabled:
            self.obs.decision(
                DecisionKind.REQUEUE,
                origin.device.name,
                time=now,
                hlop_id=hlop.hlop_id,
                unit_id=unit.index,
                why=f"migrated to {target.device.name}"
                + (f" ({reason})" if reason else ""),
                predicted_seconds=target.device.service_time(
                    unit.calibration, hlop.n_items, now=now
                ),
            )
        # Never before the owning call is ready: a queued-but-unready HLOP
        # keeps its future enqueue time through the migration.
        hlop.mark_queued(max(now, hlop.enqueue_time if hlop.attempts == 0 else now))
        target.queue.append(hlop)
        self.engine.schedule_at(
            max(now, hlop.enqueue_time),
            lambda s=target: self._try_start(s),
            kind=EventKind.REQUEUE,
        )

    def _recover_corrupt(
        self, state: _DeviceState, hlop: HLOP, start: float, finish: float
    ) -> None:
        """Output guard tripped: discard the poisoned result, recompute
        exactly once on an exact device (injection suppressed)."""
        self._charge_wasted(state, hlop, start, finish)
        self._record(
            FaultKind.CORRUPTION,
            state.device.name,
            hlop,
            detail="non-finite output block discarded",
        )
        hlop.exact_recompute = True
        self._requeue_elsewhere(
            state, hlop, reason="exact recompute", prefer_exact=True
        )
        self._try_start(state)

    # ------------------------------------------------------------- reporting

    def _report(self) -> BatchReport:
        energy_model = self.runtime.platform.energy_model
        batch_makespan = max(unit.finish_time for unit in self.units)
        reports = []
        for unit in self.units:
            if len(self.units) == 1:
                energy = energy_model.measure(self.trace, duration=unit.finish_time)
            else:
                energy = self._unit_energy(unit, energy_model)
            reports.append(self._unit_report(unit, energy))
        batch_energy = energy_model.measure(
            self.trace, duration=batch_makespan, recorder=self.obs
        )
        metrics = None
        if self.obs.enabled:
            self.obs.gauge("makespan_seconds", batch_makespan)
            # Per-device occupancy: busy compute time over the batch
            # makespan.  The before/after of the overlap work is read off
            # these gauges (docs/performance.md) -- per-job occupancy is
            # unchanged by overlap (virtual clocks are independent), while
            # wall-clock backend occupancy rises with jobs in flight.
            for name, state in self.states.items():
                self.obs.gauge(
                    "device_busy_seconds", state.busy_seconds, device=name
                )
                self.obs.gauge(
                    "device_transfer_wait_seconds", state.wait_seconds, device=name
                )
                if batch_makespan > 0:
                    self.obs.gauge(
                        "device_occupancy",
                        state.busy_seconds / batch_makespan,
                        device=name,
                    )
            self.obs.gauge("steal_count", self.steal_count)
            self.obs.gauge("retry_count", self.retry_count)
            self.obs.gauge("requeue_count", self.requeue_count)
            metrics = self.obs.finalize()
            for report in reports:
                report.metrics = metrics
        return BatchReport(
            reports=reports,
            makespan=batch_makespan,
            trace=self.trace,
            energy=batch_energy,
            steal_count=self.steal_count,
            fault_events=sorted(self.fault_events, key=lambda e: e.time),
            retry_count=self.retry_count,
            requeue_count=self.requeue_count,
            degraded=any(unit.degraded for unit in self.units),
            metrics=metrics,
        )

    def _unit_energy(self, unit: _CallUnit, energy_model) -> EnergyBreakdown:
        """Energy attributable to one call of a batch: its own active
        joules plus the platform idle draw over its own makespan."""
        per_device = {
            cls: busy * energy_model.active_watts.get(cls, 0.0)
            for cls, busy in unit.busy_by_class.items()
        }
        return EnergyBreakdown(
            active_joules=sum(per_device.values()),
            idle_joules=energy_model.idle_watts * unit.finish_time,
            duration=unit.finish_time,
            per_device_active=per_device,
        )

    def _unit_report(self, unit: _CallUnit, energy: EnergyBreakdown) -> ExecutionReport:
        output = self._assemble_output(unit)
        return ExecutionReport(
            kernel=unit.spec.name,
            scheduler=self.runtime.scheduler.name,
            output=output,
            makespan=unit.finish_time,
            trace=self.trace,
            energy=energy,
            hlops=unit.hlops,
            work_items=dict(unit.items_by_class),
            total_items=unit.total_items,
            sampling_seconds=unit.plan.sampling_seconds,
            extra_host_seconds=unit.plan.extra_host_seconds,
            dispatch_seconds=unit.dispatch_seconds,
            transfer_wait_seconds=unit.wait_seconds,
            device_busy_seconds=unit.busy_seconds,
            steal_count=unit.steal_count,
            transfers_waived=unit.transfers_waived,
            plan_notes=dict(unit.plan.notes),
            fault_events=[
                e for e in self.fault_events if e.unit_id in (None, unit.index)
            ],
            retry_count=unit.retry_count,
            requeue_count=unit.requeue_count,
            degraded=unit.degraded,
        )

    def _assemble_output(self, unit: _CallUnit) -> np.ndarray:
        incomplete = [h.hlop_id for h in unit.hlops if h.status is not HLOPStatus.DONE]
        if incomplete:
            raise RuntimeError(f"HLOPs never executed: {incomplete}")
        spec = unit.spec
        if spec.reduces:
            ordered = sorted(unit.hlops, key=lambda h: h.hlop_id)
            if self.check is not None:
                for hlop in ordered:
                    self.check.on_aggregate(
                        hlop.hlop_id, unit.index, "host", unit.finish_time
                    )
            partials = [h.result for h in ordered]
            return np.asarray(spec.merge(partials), dtype=np.float32)
        first = unit.hlops[0]
        out = np.empty(self._output_shape(unit, first.result), dtype=np.float32)
        for hlop in unit.hlops:
            out[(Ellipsis,) + hlop.partition.out_slices] = hlop.result
            if self.check is not None:
                self.check.on_aggregate(
                    hlop.hlop_id, unit.index, "host", unit.finish_time
                )
        return out

    def _output_shape(self, unit: _CallUnit, first_result: np.ndarray) -> tuple:
        shape = unit.call.data.shape
        if unit.spec.model is ParallelModel.VECTOR:
            leading = first_result.shape[:-1]
            return leading + (shape[-1],)
        if unit.spec.model is ParallelModel.ROWS:
            leading = first_result.shape[:-2]
            return leading + (shape[-2], first_result.shape[-1])
        leading = first_result.shape[:-2]
        return leading + (shape[-2], shape[-1])
