"""Execution reports: everything one simulated VOP run produced."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.hlop import HLOP
from repro.devices.energy import EnergyBreakdown
from repro.faults.plan import FaultEvent
from repro.obs.recorder import RunMetrics
from repro.sim.trace import Trace


@dataclass
class ExecutionReport:
    """The outcome of executing one VOP under one scheduling policy.

    Everything the paper's evaluation reports is derivable from here:
    end-to-end latency (Figure 6/9/12), result arrays for MAPE/SSIM
    (Figures 7/8), energy and EDP (Figure 10), work shares for the memory
    model (Figure 11), and transfer-wait accounting (Table 3).
    """

    kernel: str
    scheduler: str
    output: np.ndarray
    makespan: float
    trace: Trace
    energy: EnergyBreakdown
    hlops: List[HLOP] = field(repr=False, default_factory=list)
    work_items: Dict[str, int] = field(default_factory=dict)
    total_items: int = 0
    sampling_seconds: float = 0.0
    extra_host_seconds: float = 0.0
    dispatch_seconds: float = 0.0
    transfer_wait_seconds: float = 0.0
    device_busy_seconds: float = 0.0
    steal_count: int = 0
    #: Input transfers skipped because the data was already resident on
    #: the executing device (DAG inter-kernel buffer reuse).
    transfers_waived: int = 0
    plan_notes: Dict[str, Any] = field(default_factory=dict)
    #: Faults observed (and recovery actions taken) while running this call.
    fault_events: List[FaultEvent] = field(default_factory=list)
    #: Same-device retries after transient failures/timeouts.
    retry_count: int = 0
    #: HLOP migrations to a surviving device.
    requeue_count: int = 0
    #: True when quality control had to be relaxed to finish the call
    #: (e.g. exact-only HLOPs ran approximately after the last exact
    #: device died); the output is complete but may be lower fidelity.
    degraded: bool = False
    #: Observability snapshot for the run this call was part of (shared
    #: batch-wide); ``None`` unless ``RuntimeConfig(observe=True)``.
    metrics: Optional[RunMetrics] = None

    @property
    def faulted(self) -> bool:
        """True when any fault events were observed during this call."""
        return bool(self.fault_events)

    @property
    def work_shares(self) -> Dict[str, float]:
        """Fraction of work items executed per device class."""
        if not self.total_items:
            return {}
        return {cls: items / self.total_items for cls, items in self.work_items.items()}

    @property
    def communication_overhead(self) -> float:
        """Fraction of device time spent waiting on data exchange (Table 3)."""
        denominator = self.device_busy_seconds + self.transfer_wait_seconds
        if denominator <= 0:
            return 0.0
        return self.transfer_wait_seconds / denominator

    def speedup_over(self, baseline: "ExecutionReport") -> float:
        """End-to-end speedup of this run relative to ``baseline``."""
        if self.makespan <= 0:
            raise ValueError("run has no duration")
        return baseline.makespan / self.makespan

    def summary(self) -> Dict[str, Any]:
        """Flat dict for tabular reporting."""
        return {
            "kernel": self.kernel,
            "scheduler": self.scheduler,
            "makespan_s": self.makespan,
            "energy_j": self.energy.total_joules,
            "edp": self.energy.edp,
            "comm_overhead": self.communication_overhead,
            "steals": self.steal_count,
            "shares": self.work_shares,
            "faults": len(self.fault_events),
            "retries": self.retry_count,
            "requeues": self.requeue_count,
            "degraded": self.degraded,
        }


@dataclass
class BatchReport:
    """The outcome of executing several VOPs concurrently (Figure 1 style).

    ``reports`` carries one :class:`ExecutionReport` per submitted call, in
    submission order; each call's ``makespan`` is the time *that call*
    finished (its results aggregated), while :attr:`makespan` here is the
    end-to-end time of the whole batch.  ``energy`` integrates the full
    shared timeline and is the authoritative total (per-call energies
    attribute idle draw over each call's own window, so they overlap).
    """

    reports: List[ExecutionReport]
    makespan: float
    trace: Trace
    energy: EnergyBreakdown
    steal_count: int = 0
    #: Every fault observed across the batch, in time order.
    fault_events: List[FaultEvent] = field(default_factory=list)
    retry_count: int = 0
    requeue_count: int = 0
    #: True when any call in the batch had to degrade quality to finish.
    degraded: bool = False
    #: Observability snapshot (counters, decision log, phase profile);
    #: ``None`` unless ``RuntimeConfig(observe=True)``.
    metrics: Optional[RunMetrics] = None

    def __getitem__(self, index: int) -> ExecutionReport:
        return self.reports[index]

    def __len__(self) -> int:
        return len(self.reports)

    @property
    def outputs(self) -> List[np.ndarray]:
        return [report.output for report in self.reports]

    def speedup_over_serial(self, serial_reports: List[ExecutionReport]) -> float:
        """Batch concurrency benefit: sum of standalone times / batch time."""
        serial_total = sum(r.makespan for r in serial_reports)
        if self.makespan <= 0:
            raise ValueError("batch has no duration")
        return serial_total / self.makespan
