"""High-level operations (HLOPs) -- SHMT's basic scheduling unit.

An HLOP is one partition's worth of a VOP (paper section 3.2.2): it shares
the VOP's opcode but fixes data size and shape, and it carries the
scheduling state the runtime and QAWS policies act on -- criticality
estimates, accuracy constraints, and the execution record once a device
has run it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set

import numpy as np

from repro.core.partition import Partition


class HLOPStatus(enum.Enum):
    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"


@dataclass
class HLOP:
    """One schedulable partition of a VOP."""

    hlop_id: int
    opcode: str
    partition: Partition
    #: Which call of a batched execution this HLOP belongs to (0 for
    #: single-VOP runs); see :meth:`SHMTRuntime.execute_batch`.
    unit_id: int = 0
    #: Sampled criticality statistic (None until a QAWS policy samples it).
    criticality: Optional[float] = None
    #: Exact full-data criticality (filled by the oracle policy / analyses).
    true_criticality: Optional[float] = None
    #: Most permissive accuracy rank allowed to execute this HLOP; ``None``
    #: means any device.  0 pins the HLOP to the exact class (CPU/GPU).
    max_accuracy_rank: Optional[int] = None
    status: HLOPStatus = HLOPStatus.PENDING
    #: Simulated time the HLOP entered its *current* queue (for transfer
    #: prefetch modelling).  Only ever set through :meth:`mark_queued` so
    #: steals, retries, and migrations reset it -- a moved HLOP must not
    #: charge its new queue for time spent waiting in an old one.
    enqueue_time: float = 0.0
    #: Filled in at completion.
    device_name: Optional[str] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    #: Total simulated seconds this HLOP spent between entering a device
    #: queue and its compute starting, summed over *all* attempts (each
    #: attempt's wait is measured from the latest :meth:`mark_queued`).
    transfer_wait: float = 0.0
    result: Optional[np.ndarray] = field(default=None, repr=False)
    steals: int = 0
    #: Execution attempts started so far (1 on a fault-free run).
    attempts: int = 0
    #: Same-device retries after a transient failure or timeout.
    retries: int = 0
    #: Migrations to another device after retries were exhausted or the
    #: original device died.
    requeues: int = 0
    #: True once quality control was relaxed to keep this HLOP runnable
    #: (e.g. its exact-device pin was lifted after the last exact device
    #: died); the owning report carries the matching quality warning.
    degraded: bool = False
    #: Set when a corrupted result forced a recompute on an exact device;
    #: suppresses further fault injection on this HLOP so the recovery
    #: path terminates.
    exact_recompute: bool = False
    #: True when this HLOP's numeric work was submitted as part of a fused
    #: chain (see :mod:`repro.exec.fuse`) -- either as the chain leader or
    #: as a looked-ahead member whose submission was elided.  Purely
    #: informational: timing, results, and scheduling are unaffected.
    fused: bool = False
    #: Watchdog timeouts observed across all attempts.  Each timeout
    #: doubles the next attempt's deadline (progressive escalation), so a
    #: run whose only surviving device is slow degrades to slow progress
    #: instead of timing out forever.
    timeout_count: int = 0
    #: Devices that exhausted this HLOP's retry budget (by timing out or
    #: by failing every retry).  Re-queueing and stealing avoid these
    #: devices for this HLOP -- without the memory an idle faulty device
    #: steals its victim straight back, a livelock.  They remain a
    #: last-resort target when nothing else survives.
    failed_devices: Set[str] = field(default_factory=set)

    @property
    def n_items(self) -> int:
        return self.partition.n_items

    @property
    def pinned_exact(self) -> bool:
        """True if quality control restricted this HLOP to exact devices."""
        return self.max_accuracy_rank is not None and self.max_accuracy_rank <= 0

    def allows_rank(self, accuracy_rank: int) -> bool:
        """Can a device with this accuracy rank execute the HLOP?"""
        return self.max_accuracy_rank is None or accuracy_rank <= self.max_accuracy_rank

    def mark_queued(self, time: float) -> None:
        """(Re-)enter a device queue at simulated ``time``.

        Every path that places an HLOP on a queue -- plan dispatch, steal,
        eligibility bounce, retry re-delivery, cross-device migration --
        goes through here, so the queue-entry clock always reflects the
        *current* queue and per-attempt transfer waits never inherit time
        accrued on a previous device.
        """
        self.status = HLOPStatus.QUEUED
        self.enqueue_time = time

    def mark_done(self, device_name: str, start: float, finish: float, result: np.ndarray) -> None:
        self.status = HLOPStatus.DONE
        self.device_name = device_name
        self.start_time = start
        self.finish_time = finish
        self.result = result
