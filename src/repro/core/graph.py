"""VOP dependency DAGs: multi-input steps, ready-set execution, DAG policies.

:mod:`repro.core.program` models the paper's Figure 1 application -- a
linear chain of VOPs run level by level.  This module generalizes it to a
real dependency DAG:

* **Multi-input steps.**  A :class:`GraphStep` consumes any number of
  named upstream outputs and/or literal arrays; a ``combine`` callable
  maps them to the single input array its VOP expects (the default stacks
  raveled sources into the ``(k, N)`` layout the binary element-wise VOPs
  take, so a two-input blend join is the out-of-the-box case).
* **Ready-set execution.**  ``schedule="ready"`` dispatches a step as
  soon as its inputs have resolved *and* its devices are free -- no
  levelized barrier.  A step occupies only the devices its placement
  names, so independent steps with disjoint placements genuinely overlap
  on the simulated timeline.  ``schedule="serial"`` is the strict
  step-at-a-time reference.
* **Inter-kernel buffer reuse.**  Intermediate outputs are frozen and fed
  straight to downstream calls: their cache fingerprints are *derived*
  from provenance (never re-hashed), multi-input staging buffers come
  from the shared :class:`~repro.exec.fuse.BufferArena`, and a step
  pinned to the device that produced its input skips the host->device
  transfer entirely (``resident_on``).
* **DAG scheduling policies** (:func:`plan_dag`), alongside the runtime's
  own intra-VOP policy:

  - ``"step"`` -- every step splits across all devices under the
    runtime's scheduler (the paper's one-VOP-at-a-time view, lifted to a
    DAG).
  - ``"partition"`` -- a graph-partition policy in the spirit of Wu et
    al. (PAPERS.md): devices are cut into rate-balanced groups, and a
    greedy earliest-finish pass assigns each step to a device-affine
    group, preferring its producer's group so chains stay resident.
  - ``"mixed"`` -- mixed-mode DAG scheduling after Rohlin et al.
    (PAPERS.md): per step, choose *intra-VOP heterogeneous split* (steps
    with no concurrent peer get the whole platform) or *whole-step /
    group placement* (concurrent steps get device-affine groups when the
    calibrated cost model says overlapping beats serializing splits).

Determinism contract: a step's placement is a pure function of (graph
structure, calibrations, runtime config) -- never of execution order --
and every step executes as its own single-call run (private engine, rng,
HLOP ids).  The schedule therefore only composes per-step makespans onto
the DAG timeline; outputs are bit-identical between ``serial`` and
``ready`` by construction, and across policies on an all-exact platform
(see :func:`repro.verify.differential.check_dag_equivalence`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.result import ExecutionReport
from repro.core.runtime import SHMTRuntime
from repro.core.schedulers.dag import GroupScheduler
from repro.core.vop import VOPCall
from repro.errors import InvalidInput
from repro.exec.fuse import BufferArena, arena as shared_arena
from repro.exec.task import fingerprint_array, fingerprint_value
from repro.kernels.registry import ParallelModel

Source = Union[np.ndarray, str]
#: Maps the resolved source arrays to the step's single VOP input.
Combine = Callable[[Sequence[np.ndarray]], np.ndarray]

DAG_POLICIES = ("step", "partition", "mixed")
DAG_SCHEDULES = ("serial", "ready")


@dataclass
class GraphStep:
    """One DAG node: a VOP applied to one or more named/literal inputs."""

    name: str
    opcode: str
    sources: Tuple[Source, ...]
    context: Any = None
    #: ``None`` = identity for one source, stack-of-raveled for several.
    combine: Optional[Combine] = None

    @property
    def dep_names(self) -> Tuple[str, ...]:
        return tuple(s for s in self.sources if isinstance(s, str))


@dataclass
class StepPlacement:
    """Where one step runs: a full split or a device-affine group."""

    mode: str  # "split" | "group"
    devices: Tuple[str, ...]
    why: str = ""


@dataclass
class GraphResult:
    """Per-step reports plus the composed DAG timeline."""

    reports: Dict[str, ExecutionReport]
    order: List[str]
    placements: Dict[str, StepPlacement]
    starts: Dict[str, float]
    finishes: Dict[str, float]
    schedule: str
    policy: str
    idle_watts: float = 0.0
    #: Downstream inputs whose cache fingerprints were derived from
    #: provenance instead of re-hashing freshly produced bytes.
    fingerprints_derived: int = 0
    #: Multi-input staging buffers served by the shared BufferArena.
    arena_acquires: int = 0

    @property
    def total_time(self) -> float:
        """DAG makespan: the latest step finish on the composed timeline."""
        return max(self.finishes.values()) if self.finishes else 0.0

    @property
    def sum_of_step_times(self) -> float:
        return sum(self.reports[name].makespan for name in self.order)

    @property
    def total_energy(self) -> float:
        """Active joules of every step plus idle draw over the makespan."""
        active = sum(
            self.reports[name].energy.active_joules for name in self.order
        )
        return active + self.idle_watts * self.total_time

    @property
    def transfers_waived(self) -> int:
        return sum(self.reports[name].transfers_waived for name in self.order)

    @property
    def degraded(self) -> bool:
        return any(self.reports[name].degraded for name in self.order)

    def critical_path(self) -> List[str]:
        """Dependency chain ending at the step that finishes last."""
        if not self.finishes:
            return []
        deps = {name: self._deps.get(name, ()) for name in self.order}
        current = max(self.order, key=lambda n: self.finishes[n])
        path = [current]
        while deps[current]:
            current = max(deps[current], key=lambda n: self.finishes[n])
            path.append(current)
        return list(reversed(path))

    #: Dependency edges, injected by :meth:`Graph.run` for critical_path.
    _deps: Dict[str, Tuple[str, ...]] = field(default_factory=dict, repr=False)

    def output(self, step_name: Optional[str] = None) -> np.ndarray:
        name = step_name if step_name is not None else self.order[-1]
        return self.reports[name].output


class _HostTimeline:
    """Serial host occupancy with gap-filling claims.

    The engine charges host phases (sampling, dispatch, aggregation) on
    one serial host; later steps' prologues may slot into gaps the host
    leaves while earlier steps' devices are busy (exactly how
    ``execute_batch`` charges all prologues before the first epilogue).
    ``claim`` books the earliest gap that fits and returns its bounds.
    """

    def __init__(self) -> None:
        self._busy: List[Tuple[float, float]] = []

    def claim(self, earliest: float, duration: float) -> Tuple[float, float]:
        if duration <= 0.0:
            return earliest, earliest
        start = earliest
        index = 0
        for index, (b_start, b_end) in enumerate(self._busy):
            if start + duration <= b_start:
                break
            start = max(start, b_end)
            index += 1
        interval = (start, start + duration)
        self._busy.insert(index, interval)
        return interval


class Graph:
    """An append-only VOP dependency DAG (acyclic by construction)."""

    def __init__(self) -> None:
        self._steps: List[GraphStep] = []
        self._names: set = set()

    def add(
        self,
        name: str,
        opcode: str,
        sources: Union[Source, Sequence[Source]],
        context: Any = None,
        combine: Optional[Combine] = None,
    ) -> "Graph":
        """Append a step consuming literal arrays and/or earlier outputs.

        ``sources`` may be a single array/step name or a sequence of
        them.  References must name *earlier* steps (append-only keeps
        the graph acyclic); duplicates, unknown references, and
        self-references are rejected with stable ``INVALID_INPUT``
        errors.
        """
        if name in self._names:
            raise InvalidInput(f"duplicate step name {name!r}")
        if isinstance(sources, (str, np.ndarray)):
            sources = (sources,)
        sources = tuple(sources)
        if not sources:
            raise InvalidInput(f"step {name!r} has no sources")
        for source in sources:
            if isinstance(source, str):
                if not source:
                    raise InvalidInput(f"step {name!r}: empty source reference")
                if source == name:
                    raise InvalidInput(
                        f"step {name!r} references itself as a source"
                    )
                if source not in self._names:
                    raise InvalidInput(
                        f"step {name!r} references unknown step {source!r}"
                    )
            elif not isinstance(source, np.ndarray):
                raise InvalidInput(
                    f"step {name!r}: sources must be arrays or step names, "
                    f"got {type(source).__name__}"
                )
        self._steps.append(
            GraphStep(
                name=name,
                opcode=opcode,
                sources=sources,
                context=context,
                combine=combine,
            )
        )
        self._names.add(name)
        return self

    @property
    def steps(self) -> List[GraphStep]:
        return list(self._steps)

    def levels(self) -> List[List[GraphStep]]:
        """Dependency levels (steps within a level are independent)."""
        level_of: Dict[str, int] = {}
        levels: List[List[GraphStep]] = []
        for step in self._steps:
            deps = step.dep_names
            level = 1 + max((level_of[d] for d in deps), default=-1)
            level_of[step.name] = level
            while len(levels) <= level:
                levels.append([])
            levels[level].append(step)
        return levels

    def ancestors(self) -> Dict[str, set]:
        """Transitive dependency closure per step."""
        closure: Dict[str, set] = {}
        for step in self._steps:
            anc: set = set()
            for dep in step.dep_names:
                anc.add(dep)
                anc |= closure[dep]
            closure[step.name] = anc
        return closure

    # ------------------------------------------------------------------- run

    def run(
        self,
        runtime: SHMTRuntime,
        schedule: str = "ready",
        policy: str = "step",
        arena: Optional[BufferArena] = None,
    ) -> GraphResult:
        """Execute the DAG on ``runtime`` under one schedule and policy.

        Each step runs as its own single-call run on a private simulated
        timeline (placement decided up front by ``policy``); the DAG
        schedule then composes those per-step makespans onto one global
        timeline with per-device occupancy.  ``serial`` chains every
        step; ``ready`` starts a step at
        ``max(inputs resolved, its devices free)``.
        """
        if not self._steps:
            raise InvalidInput("graph has no steps")
        if schedule not in DAG_SCHEDULES:
            raise InvalidInput(
                f"unknown DAG schedule {schedule!r}; choose from {DAG_SCHEDULES}"
            )
        placements = plan_dag(self, runtime, policy)
        arena = arena if arena is not None else shared_arena()
        literals = self._frozen_literals()
        graph_key = self._graph_key(runtime, policy, literals)

        step_runtimes: Dict[Tuple[str, ...], SHMTRuntime] = {}

        def runtime_for(placement: StepPlacement) -> SHMTRuntime:
            if placement.mode == "split":
                return runtime
            key = placement.devices
            if key not in step_runtimes:
                step_runtimes[key] = SHMTRuntime(
                    runtime.platform,
                    GroupScheduler(list(key)),
                    runtime.config,
                    backend=runtime.backend,
                )
            return step_runtimes[key]

        reports: Dict[str, ExecutionReport] = {}
        outputs: Dict[str, np.ndarray] = {}
        starts: Dict[str, float] = {}
        finishes: Dict[str, float] = {}
        derived = 0
        acquired = 0
        serial_clock = 0.0
        host = _HostTimeline()
        device_free: Dict[str, float] = {}
        by_name = {step.name: step for step in self._steps}

        for step in self._steps:
            arrays = [
                outputs[s] if isinstance(s, str) else literals[(step.name, i)]
                for i, s in enumerate(step.sources)
            ]
            data, staged = self._combined_input(step, arrays, arena)
            if staged is not None:
                acquired += 1
            call = VOPCall(
                opcode=step.opcode,
                data=data,
                context=step.context,
                label=step.name,
            )
            if call.data is data and not data.flags.writeable:
                if graph_key is not None:
                    # The input is a pure function of the graph's literal
                    # inputs and the run identity -- key it by provenance
                    # instead of hashing the bytes we just produced.
                    call.seed_fingerprint(f"dag1:{graph_key}:{step.name}:in")
                    derived += 1
            placement = placements[step.name]
            resident = self._residency(step, by_name, placements)
            if resident:
                call.metadata["resident_on"] = resident
            report = runtime_for(placement).execute(call)
            reports[step.name] = report
            out = report.output
            out.setflags(write=False)
            outputs[step.name] = out

            dep_ready = max(
                (finishes[d] for d in step.dep_names), default=0.0
            )
            if schedule == "serial":
                start = serial_clock
                finish = start + report.makespan
            else:
                # Ready-set composition with a serial host resource: the
                # step's host prologue (sampling + dispatch) runs as soon
                # as its inputs resolve and a host gap opens, its device
                # window occupies only its placement's devices, and its
                # aggregation epilogue takes the host again once the
                # devices finish.  Host work of one step thereby overlaps
                # device execution of another -- the same overlap
                # execute_batch grants calls sharing one engine (later
                # prologues slot into host gaps left while earlier steps'
                # devices are still busy).
                pre = (
                    report.sampling_seconds
                    + report.extra_host_seconds
                    + report.dispatch_seconds / 2.0
                )
                post = report.dispatch_seconds / 2.0
                window = max(report.makespan - pre - post, 0.0)
                pre_start, pre_end = host.claim(dep_ready, pre)
                dev_start = max(
                    pre_end,
                    max(
                        (device_free.get(d, 0.0) for d in placement.devices),
                        default=0.0,
                    ),
                )
                dev_end = dev_start + window
                _, finish = host.claim(dev_end, post)
                start = pre_start
            serial_clock = max(serial_clock, finish)
            for d in placement.devices:
                device_free[d] = (
                    finish if schedule == "serial" else dev_end
                )
            starts[step.name] = start
            finishes[step.name] = finish

            if staged is not None:
                # The staging buffer's views never outlive the step's run
                # (task results and cached entries are fresh arrays), so
                # it can rejoin the arena for the next join.
                staged.setflags(write=True)
                arena.release(staged)

        result = GraphResult(
            reports=reports,
            order=[s.name for s in self._steps],
            placements=placements,
            starts=starts,
            finishes=finishes,
            schedule=schedule,
            policy=policy,
            idle_watts=runtime.platform.energy_model.idle_watts,
            fingerprints_derived=derived,
            arena_acquires=acquired,
        )
        result._deps = {s.name: s.dep_names for s in self._steps}
        return result

    # --------------------------------------------------------------- helpers

    def _frozen_literals(self) -> Dict[Tuple[str, int], np.ndarray]:
        """Private frozen float32 copies of every literal source."""
        literals: Dict[Tuple[str, int], np.ndarray] = {}
        for step in self._steps:
            for i, source in enumerate(step.sources):
                if isinstance(source, np.ndarray):
                    arr = np.array(source, dtype=np.float32)
                    arr.setflags(write=False)
                    literals[(step.name, i)] = arr
        return literals

    def _graph_key(
        self,
        runtime: SHMTRuntime,
        policy: str,
        literals: Dict[Tuple[str, int], np.ndarray],
    ) -> Optional[str]:
        """Provenance fingerprint of the whole run, or ``None``.

        Every intermediate array is a pure deterministic function of
        (graph structure, literal inputs, contexts, runtime identity,
        seed, policy), so this key soundly stands in for content hashes
        of intermediates.  Unfingerprintable contexts or an active fault
        plan (which may corrupt results) disable derivation -- callers
        fall back to plain content hashing.
        """
        if runtime.platform.fault_plan is not None:
            return None
        if runtime.config.fault_plan is not None:
            return None
        parts: List[str] = []
        for step in self._steps:
            srcs: List[str] = []
            for i, source in enumerate(step.sources):
                if isinstance(source, str):
                    srcs.append(f"ref:{source}")
                else:
                    srcs.append(
                        f"lit:{fingerprint_array(literals[(step.name, i)])}"
                    )
            ctx_fp = fingerprint_value(step.context)
            if ctx_fp is None:
                return None
            if step.combine is not None and not getattr(
                step.combine, "dag_combine_id", None
            ):
                # An anonymous combine has no stable identity across
                # processes; without one the provenance key is unsound.
                return None
            combine_id = (
                getattr(step.combine, "dag_combine_id", "stack-ravel")
                if len(step.sources) > 1 or step.combine is not None
                else "identity"
            )
            parts.append(
                f"{step.name}|{step.opcode}|{','.join(srcs)}|{ctx_fp}|{combine_id}"
            )
        platform_id = tuple(
            (d.name, d.device_class, d.accuracy_rank)
            for d in runtime.platform.devices
        )
        identity = fingerprint_value(
            (
                "dag-run/v1",
                tuple(parts),
                platform_id,
                runtime.scheduler.name,
                policy,
                runtime.config.seed,
                fingerprint_value(runtime.config.partition),
            )
        )
        return identity

    def _combined_input(
        self,
        step: GraphStep,
        arrays: List[np.ndarray],
        arena: BufferArena,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """(VOP input, arena buffer to release after the step or None)."""
        if step.combine is not None:
            data = np.ascontiguousarray(
                step.combine(arrays), dtype=np.float32
            )
            data.setflags(write=False)
            return data, None
        if len(arrays) == 1:
            return arrays[0], None
        # Default join: stack raveled sources into (k, N) -- the layout
        # the binary element-wise VOPs consume (operand per row).  The
        # staging buffer comes from the shared arena so back-to-back
        # joins of the same shape recycle one allocation.
        n = arrays[0].size
        for arr in arrays[1:]:
            if arr.size != n:
                raise InvalidInput(
                    f"step {step.name!r}: default combine needs equal-size "
                    f"sources, got {arrays[0].shape} vs {arr.shape}"
                )
        buf = arena.acquire((len(arrays), n), np.float32)
        if not buf.flags.writeable:
            buf.setflags(write=True)
        for row, arr in enumerate(arrays):
            np.copyto(buf[row], arr.reshape(-1))
        buf.setflags(write=False)
        return buf, buf

    def _residency(
        self,
        step: GraphStep,
        by_name: Dict[str, GraphStep],
        placements: Dict[str, StepPlacement],
    ) -> Tuple[str, ...]:
        """Devices already holding this step's input, if any.

        Residency needs an unmodified single-step input (identity
        combine) produced by a step pinned to *one* device, consumed by
        a step pinned to that same device: then the intermediate truly
        never moved, and the input transfer is waived.  Multi-device
        groups aggregate on the host, and joins rebuild their input on
        the host, so neither qualifies.
        """
        if len(step.sources) != 1 or step.combine is not None:
            return ()
        source = step.sources[0]
        if not isinstance(source, str):
            return ()
        mine = placements[step.name]
        theirs = placements[source]
        if (
            mine.mode == "group"
            and theirs.mode == "group"
            and len(mine.devices) == 1
            and mine.devices == theirs.devices
        ):
            return mine.devices
        return ()


# ------------------------------------------------------------------ planning


def plan_dag(
    graph: Graph, runtime: SHMTRuntime, policy: str
) -> Dict[str, StepPlacement]:
    """Decide each step's placement under one DAG policy.

    Placements are a deterministic function of the graph's structure and
    the runtime's calibrations/config -- execution order never feeds
    back, which is what makes serial and ready runs bit-identical.
    """
    if policy not in DAG_POLICIES:
        raise InvalidInput(
            f"unknown DAG policy {policy!r}; choose from {DAG_POLICIES}"
        )
    devices = runtime.scheduler.participating(runtime.platform.devices)
    all_names = tuple(d.name for d in devices)
    steps = graph.steps
    if policy == "step":
        return {
            s.name: StepPlacement(
                mode="split",
                devices=all_names,
                why="intra-VOP split on every device",
            )
            for s in steps
        }

    sizes = _planning_sizes(graph)
    rates = _mean_rates(graph, devices)
    width = max(len(level) for level in graph.levels())
    groups = _device_groups(devices, rates, width)
    grouped = _greedy_group_assignment(graph, runtime, sizes, groups)
    if policy == "partition":
        return grouped

    # Mixed mode (Rohlin et al.): per step, choose between intra-VOP
    # heterogeneous split and whole-step/group placement by predicted
    # DAG makespan.  Candidates: all-split, fully grouped, and a hybrid
    # that groups only steps with a concurrent peer; each is costed with
    # the same host+device composition model the ready schedule uses,
    # fed by calibrated estimates, and the cheapest plan wins.  Steps
    # without a concurrent peer never benefit from a group (nothing to
    # overlap with), so the hybrid keeps them on the full split.
    closure = graph.ancestors()
    descendants: Dict[str, set] = {s.name: set() for s in steps}
    for name, anc in closure.items():
        for a in anc:
            descendants[a].add(name)
    split_all = {
        s.name: StepPlacement(
            mode="split",
            devices=all_names,
            why="mixed-mode: full intra-VOP split predicted fastest",
        )
        for s in steps
    }
    hybrid: Dict[str, StepPlacement] = {}
    for s in steps:
        has_peer = any(
            other.name != s.name
            and other.name not in closure[s.name]
            and other.name not in descendants[s.name]
            for other in steps
        )
        if has_peer:
            placement = grouped[s.name]
            hybrid[s.name] = StepPlacement(
                mode=placement.mode,
                devices=placement.devices,
                why="mixed-mode: concurrent peers overlap on this group",
            )
        else:
            hybrid[s.name] = StepPlacement(
                mode="split",
                devices=all_names,
                why="mixed-mode: no concurrent peer, split is fastest",
            )
    candidates = [split_all, hybrid, grouped]
    predicted = [
        _predict_makespan(graph, plan, runtime, sizes, devices)
        for plan in candidates
    ]
    # Ties (within 0.1%) go to the most-placed candidate: placements
    # shed per-step planning work the predictor cannot see (group plans
    # skip input sampling), so when the model calls it even, the
    # grouped plan is the better bet.
    floor = min(predicted)
    best = max(i for i in range(len(candidates)) if predicted[i] <= floor * 1.001)
    return candidates[best]


def _planning_sizes(graph: Graph) -> Dict[str, Tuple[int, int]]:
    """Per-step (input_size, output_size) estimates for the cost model.

    Sizes propagate structurally: reductions emit a constant-size
    result, vector kernels preserve the trailing axis, tile/row kernels
    preserve the trailing image, and joins sum their source sizes.
    Estimates only steer placement -- correctness never depends on them.
    """
    from repro.core.vop import kernel_for_vop

    sizes: Dict[str, Tuple[int, int]] = {}
    out_size: Dict[str, int] = {}
    for step in graph.steps:
        per_source = [
            out_size[s] if isinstance(s, str) else int(np.asarray(s).size)
            for s in step.sources
        ]
        in_size = max(1, int(sum(per_source)))
        spec = kernel_for_vop(step.opcode)
        if spec.reduces:
            out = 256
        elif spec.model is ParallelModel.VECTOR:
            out = max(per_source) if len(per_source) > 1 else in_size
        else:
            out = in_size
        sizes[step.name] = (in_size, int(out))
        out_size[step.name] = int(out)
    return sizes


def _mean_rates(graph: Graph, devices) -> Dict[str, float]:
    """Mean per-class device rate across the graph's kernels."""
    from repro.core.vop import kernel_for_vop

    classes = {d.device_class for d in devices}
    specs = {kernel_for_vop(s.opcode).name: kernel_for_vop(s.opcode) for s in graph.steps}
    rates: Dict[str, float] = {}
    for cls in classes:
        values = [
            spec.calibration.device_rate(cls) for spec in specs.values()
        ]
        rates[cls] = float(np.mean(values)) if values else 1.0
    return rates


def _device_groups(devices, rates: Dict[str, float], width: int) -> List[Tuple[str, ...]]:
    """Cut the devices into ``min(width, n)`` rate-balanced groups."""
    n_groups = max(1, min(width, len(devices)))
    ordered = sorted(
        devices, key=lambda d: (-rates.get(d.device_class, 1.0), d.name)
    )
    totals = [0.0] * n_groups
    members: List[List[str]] = [[] for _ in range(n_groups)]
    for device in ordered:
        target = min(range(n_groups), key=lambda i: (totals[i], i))
        members[target].append(device.name)
        totals[target] += rates.get(device.device_class, 1.0)
    return [tuple(group) for group in members if group]


def _rate_of(names: Sequence[str], step: GraphStep, graph: Graph, devices) -> float:
    from repro.core.vop import kernel_for_vop

    cal = kernel_for_vop(step.opcode).calibration
    by_name = {d.name: d for d in devices}
    return sum(
        cal.device_rate(by_name[n].device_class) for n in names if n in by_name
    )


def _group_rate(names: Sequence[str], step: GraphStep, graph: Graph, devices) -> float:
    return max(_rate_of(names, step, graph, devices), 1e-9)


def _predict_seconds(
    step: GraphStep,
    sizes: Dict[str, Tuple[int, int]],
    runtime: SHMTRuntime,
    rate: float,
) -> float:
    """Calibrated step-time estimate on an aggregate ``rate``."""
    from repro.core.vop import kernel_for_vop

    cal = kernel_for_vop(step.opcode).calibration
    in_size = sizes[step.name][0]
    compute = cal.gpu_compute_time(in_size) / max(rate, 1e-9)
    overhead = runtime.dispatch_overhead(
        cal, runtime.config.partition.target_partitions, in_size
    )
    return compute + overhead


def _predict_makespan(
    graph: Graph,
    placements: Dict[str, StepPlacement],
    runtime: SHMTRuntime,
    sizes: Dict[str, Tuple[int, int]],
    devices,
) -> float:
    """Predicted ready-schedule makespan of one candidate placement.

    Runs the same host+device composition the ready schedule uses, with
    calibrated estimates standing in for measured step reports: the
    host phases are the dispatch overhead halves, the device window is
    compute at the placement's aggregate rate.
    """
    from repro.core.vop import kernel_for_vop

    host = _HostTimeline()
    device_free: Dict[str, float] = {}
    finishes: Dict[str, float] = {}
    for step in graph.steps:
        placement = placements[step.name]
        cal = kernel_for_vop(step.opcode).calibration
        in_size = sizes[step.name][0]
        overhead = runtime.dispatch_overhead(
            cal, runtime.config.partition.target_partitions, in_size
        )
        rate = _group_rate(placement.devices, step, graph, devices)
        window = cal.gpu_compute_time(in_size) / rate
        dep_ready = max((finishes[d] for d in step.dep_names), default=0.0)
        _, pre_end = host.claim(dep_ready, overhead / 2.0)
        dev_start = max(
            pre_end,
            max(
                (device_free.get(d, 0.0) for d in placement.devices),
                default=0.0,
            ),
        )
        dev_end = dev_start + window
        _, finish = host.claim(dev_end, overhead / 2.0)
        finishes[step.name] = finish
        for d in placement.devices:
            device_free[d] = dev_end
    return max(finishes.values()) if finishes else 0.0


def _greedy_group_assignment(
    graph: Graph,
    runtime: SHMTRuntime,
    sizes: Dict[str, Tuple[int, int]],
    groups: List[Tuple[str, ...]],
) -> Dict[str, StepPlacement]:
    """Earliest-finish greedy pass with producer-affinity (Wu et al.).

    Steps are visited in topological (insertion) order; each picks the
    group minimizing its predicted finish, except that its producer's
    group wins ties within 10% -- chain affinity keeps intermediates
    resident on one group and unlocks the transfer waiver.
    """
    devices = runtime.scheduler.participating(runtime.platform.devices)
    group_free = [0.0] * len(groups)
    finish: Dict[str, float] = {}
    assigned_group: Dict[str, int] = {}
    placements: Dict[str, StepPlacement] = {}
    for step in graph.steps:
        dep_ready = max((finish[d] for d in step.dep_names), default=0.0)
        estimates = []
        for gid, group in enumerate(groups):
            rate = _group_rate(group, step, graph, devices)
            t = _predict_seconds(step, sizes, runtime, rate)
            estimates.append(max(dep_ready, group_free[gid]) + t)
        best = min(range(len(groups)), key=lambda g: (estimates[g], g))
        choice = best
        deps = step.dep_names
        if deps:
            producer_groups = {assigned_group[d] for d in deps}
            if len(producer_groups) == 1:
                home = next(iter(producer_groups))
                if estimates[home] <= estimates[best] * 1.10:
                    choice = home
        assigned_group[step.name] = choice
        finish[step.name] = estimates[choice]
        group_free[choice] = estimates[choice]
        placements[step.name] = StepPlacement(
            mode="group",
            devices=groups[choice],
            why=f"earliest-finish group {choice} (affinity-aware)",
        )
    return placements
