"""Iterative solvers on top of SHMT.

Hotspot and SRAD are time-stepping algorithms: the benchmark kernels run
*one* explicit step (matching the paper's per-kernel measurements), but
real usage iterates until the field settles.  This module drives that
loop through the runtime -- one VOP per step, the step's output (plus any
host-side context refresh, e.g. SRAD's per-iteration q0) feeding the next
-- and accumulates time/energy across steps.

The loop also demonstrates a quality property the single-step experiments
can't: approximate-device error *compounds* across iterations, so QAWS's
per-step protection matters more the longer the solve runs (tested in
tests/core/test_iterative.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.result import ExecutionReport
from repro.core.runtime import SHMTRuntime
from repro.core.vop import VOPCall

#: Builds the next iteration's VOP input from the previous output.
Advance = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class IterativeResult:
    """Outcome of a multi-step solve."""

    final: np.ndarray
    reports: List[ExecutionReport] = field(default_factory=list)

    @property
    def steps(self) -> int:
        return len(self.reports)

    @property
    def total_time(self) -> float:
        return sum(report.makespan for report in self.reports)

    @property
    def total_energy(self) -> float:
        return sum(report.energy.total_joules for report in self.reports)


def _advance_identity(_previous_input: np.ndarray, output: np.ndarray) -> np.ndarray:
    return output


def _advance_hotspot(previous_input: np.ndarray, output: np.ndarray) -> np.ndarray:
    """Hotspot carries (temp, power): the new temperature joins the fixed
    power map for the next step."""
    power = previous_input[1]
    return np.stack([output, power]).astype(np.float32)


#: Per-opcode advance functions for the stateful kernels.
ADVANCE_BY_OPCODE = {
    "parabolic_PDE": _advance_hotspot,
    "hotspot": _advance_hotspot,
}


def run_iterative(
    runtime: SHMTRuntime,
    opcode: str,
    data: np.ndarray,
    steps: int,
    advance: Optional[Advance] = None,
    convergence_tol: Optional[float] = None,
) -> IterativeResult:
    """Run ``steps`` explicit iterations of a time-stepping VOP.

    Args:
        runtime: the SHMT runtime to execute each step on.
        opcode: the VOP to iterate (e.g. ``"SRAD"``, ``"parabolic_PDE"``).
        data: the initial input (kernel-specific layout).
        steps: maximum number of iterations.
        advance: maps (previous input, step output) -> next input; defaults
            to the per-opcode rule (output feeds straight back for SRAD,
            temperature rejoins the power map for Hotspot).
        convergence_tol: stop early once the mean absolute update falls
            below this threshold.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    advance_fn = advance or ADVANCE_BY_OPCODE.get(opcode, _advance_identity)
    current = np.asarray(data, dtype=np.float32)
    reports: List[ExecutionReport] = []
    output = current
    for _step in range(steps):
        # Context is rebuilt per step (SRAD's q0 is a per-iteration global
        # statistic on the host, exactly as Rodinia recomputes it).
        report = runtime.execute(VOPCall(opcode, current))
        reports.append(report)
        output = report.output
        if convergence_tol is not None:
            field_prev = current[0] if current.ndim == 3 else current
            update = float(np.abs(output - field_prev).mean())
            if update < convergence_tol:
                break
        current = advance_fn(current, output)
    return IterativeResult(final=output, reports=reports)
