"""Wall-clock overlap driver: interleave many simulated jobs on one thread.

The sequential runtime finishes one job's event loop before starting the
next, so backend workers idle whenever the single live job is in a host
(transfer/aggregation) phase -- the stall class the paper's section 4.4
pipelining baseline hides *within* one job, generalized here *across*
jobs.  The :class:`OverlapDriver` holds several prepared runs
(:meth:`SHMTRuntime.prepare_batch`) and pumps their engines event by
event: when a job's next event is a completion whose compute handle has
not resolved yet, the driver parks that job and advances another instead
of blocking, so transfers, backend compute, and aggregation of
*different* jobs overlap in wall time.

Two invariants make this safe:

* **Per-job timelines are untouched.**  Each job owns its engine, trace,
  rng stream, and recorder; the driver only chooses *when in wall time*
  an event fires, never *which* event fires next within a job.  Outputs
  and per-job makespans are therefore bit-identical to sequential
  execution (pinned by
  :func:`repro.verify.differential.check_overlap_equivalence`).
* **Readiness is advisory.**  ``handle.ready()`` only defers a join; the
  completion event eventually fires and joins the handle exactly as the
  sequential loop would, so fault handling (worker crashes surface at
  the join) and validation hooks see the same world.

With fusion active the driver also routes backend submissions through a
:class:`SubmissionBatcher`: jobs' fused groups are deferred and released
together once every live job is blocked, so the
:class:`~repro.exec.fuse.FusingBackend` sees cross-job queues and stacks
deeper vectorized batches than any single job could offer.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait as wait_futures
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exec.backends import TaskHandle

#: Default cap on jobs simultaneously in flight.  Enough depth for the
#: fusion pass to stack cross-job batches, small enough that per-job
#: working sets (padded inputs, partition plans) stay bounded.
DEFAULT_WINDOW = 8


@dataclass
class OverlapStats:
    """Wall-clock counters for one driver invocation."""

    jobs: int = 0
    peak_in_flight: int = 0
    events_stepped: int = 0
    #: Times every in-flight job was blocked and the driver slept on
    #: backend futures instead of spinning.
    blocked_waits: int = 0
    #: Deferred-submission releases (cross-job batching opportunities).
    flushes: int = 0
    flushed_tasks: int = 0
    #: Blocked handles joined inline because nothing was waitable (serial
    #: backend); the join itself performs the compute, so this is
    #: progress, not a stall.
    inline_joins: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "jobs": self.jobs,
            "peak_in_flight": self.peak_in_flight,
            "events_stepped": self.events_stepped,
            "blocked_waits": self.blocked_waits,
            "flushes": self.flushes,
            "flushed_tasks": self.flushed_tasks,
            "inline_joins": self.inline_joins,
        }


class _DeferredHandle(TaskHandle):
    """A handle for a submission the batcher has not released yet.

    Not ready until the batcher flushes and binds the backend's real
    handle; a direct :meth:`result` call (nothing else runnable, or a
    caller outside the driver) forces the flush, so the handle can never
    deadlock its owner.
    """

    __slots__ = ("_batcher", "_inner")

    def __init__(self, batcher: "SubmissionBatcher") -> None:
        super().__init__()
        self._batcher = batcher
        self._inner: Optional[TaskHandle] = None

    def _bind(self, inner: TaskHandle) -> None:
        self._inner = inner
        self.cached = inner.cached

    def result(self) -> np.ndarray:
        if self._inner is None:
            self._batcher.flush()
        return self._inner.result()

    def ready(self) -> bool:
        return self._inner is not None and self._inner.ready()

    def waitable(self):
        return None if self._inner is None else self._inner.waitable()


class _BoundBatcher:
    """A :class:`SubmissionBatcher` pre-bound to one run's backend, so
    the runtime's submission site needs no knowledge of the driver."""

    __slots__ = ("_batcher", "_backend")

    def __init__(self, batcher: "SubmissionBatcher", backend: Any) -> None:
        self._batcher = batcher
        self._backend = backend

    def submit_group(self, tasks: Sequence[Any]) -> List[TaskHandle]:
        return self._batcher.defer(self._backend, tasks)


class SubmissionBatcher:
    """Defers backend submissions so concurrent jobs' tasks flush together.

    Each job's fused groups are buffered as they are produced; when the
    driver finds every live job blocked, one :meth:`flush` hands the
    whole buffer -- grouped per backend -- to ``backend.submit_group`` in
    a single call, which is where :class:`~repro.exec.fuse.FusingBackend`
    forms its compatibility groups.  Deferral only moves submissions
    later in *wall* time; simulated completion events already carry each
    task's service time, so timelines and results are unchanged.
    """

    def __init__(self) -> None:
        #: (backend, task, deferred handle), in submission order.
        self._buffer: List[Tuple[Any, Any, _DeferredHandle]] = []
        self.stats: Optional[OverlapStats] = None

    def bind(self, backend: Any) -> _BoundBatcher:
        return _BoundBatcher(self, backend)

    def defer(self, backend: Any, tasks: Sequence[Any]) -> List[TaskHandle]:
        handles: List[TaskHandle] = []
        for task in tasks:
            handle = _DeferredHandle(self)
            self._buffer.append((backend, task, handle))
            handles.append(handle)
        return handles

    def flush(self) -> bool:
        """Release every deferred submission; ``True`` if any were held."""
        if not self._buffer:
            return False
        buffered, self._buffer = self._buffer, []
        groups: Dict[int, Tuple[Any, List[Any], List[_DeferredHandle]]] = {}
        for backend, task, handle in buffered:
            entry = groups.get(id(backend))
            if entry is None:
                entry = groups[id(backend)] = (backend, [], [])
            entry[1].append(task)
            entry[2].append(handle)
        for backend, tasks, handles in groups.values():
            for deferred, inner in zip(handles, backend.submit_group(tasks)):
                deferred._bind(inner)
        if self.stats is not None:
            self.stats.flushes += 1
            self.stats.flushed_tasks += len(buffered)
        return True


@dataclass
class OverlapJob:
    """One unit of work for the driver: a thunk producing a prepared run.

    ``prepare`` is called on the driver thread at admission (so at most
    ``window`` jobs hold planning state at once) and must return a
    :class:`repro.core.runtime._BatchRun`-shaped object exposing
    ``begin()``, ``finish()``, ``engine``, ``runtime``, ``batcher``, and
    ``_fuse``.  Exactly one of ``report``/``error`` is set afterwards,
    except for jobs abandoned after a fatal error (``aborted``).
    """

    key: Any
    prepare: Callable[[], Any]
    #: Called on the driver thread the moment this job settles (report or
    #: error set) -- the serving layer finishes/streams jobs here instead
    #: of waiting for the whole window to drain.
    on_done: Optional[Callable[["OverlapJob"], None]] = None
    run: Any = field(default=None, repr=False)
    report: Any = field(default=None, repr=False)
    error: Optional[BaseException] = None
    #: True when a fatal error on a *sibling* stopped the driver before
    #: this job could finish; the job is left unsettled on purpose.
    aborted: bool = False
    finished: bool = False
    #: The unready handle this job is currently parked on.
    blocker: Optional[TaskHandle] = field(default=None, repr=False)


class OverlapDriver:
    """Single-threaded scheduler interleaving many jobs' event loops."""

    def __init__(
        self,
        window: Optional[int] = None,
        fatal: Tuple[type, ...] = (),
        batcher: Optional[SubmissionBatcher] = None,
    ) -> None:
        self.window = window if window is not None else DEFAULT_WINDOW
        if self.window < 1:
            raise ValueError(f"overlap window must be >= 1, got {self.window}")
        #: Exception types that abort the whole window (e.g. the serving
        #: layer's kill signal); anything else fails only its own job.
        self.fatal = fatal
        self.batcher = batcher if batcher is not None else SubmissionBatcher()
        self.stats = OverlapStats()
        self.batcher.stats = self.stats

    # ------------------------------------------------------------------ drive

    def drive(self, jobs: Sequence[OverlapJob]) -> OverlapStats:
        """Run ``jobs`` to completion, overlapping their wall-clock time.

        Jobs are admitted in order up to the window and each is pumped
        until it blocks on an unready compute handle.  When every live
        job is blocked the driver first releases deferred submissions
        (cross-job batches), then sleeps on the blockers' futures.  A
        fatal error stops everything: unfinished siblings are marked
        ``aborted`` and the error re-raised here.
        """
        self.stats.jobs += len(jobs)
        pending = deque(jobs)
        active: List[OverlapJob] = []
        fatal_error: Optional[BaseException] = None
        while pending or active:
            progressed = False
            while pending and len(active) < self.window:
                job = pending.popleft()
                progressed = True
                if self._start(job):
                    active.append(job)
                elif isinstance(job.error, self.fatal):
                    fatal_error = job.error
                    break
            self.stats.peak_in_flight = max(self.stats.peak_in_flight, len(active))
            if fatal_error is None:
                for job in list(active):
                    progressed = self._pump(job) or progressed
                    if job.finished or job.error is not None:
                        active.remove(job)
                        self._settle(job)
                        if isinstance(job.error, self.fatal):
                            fatal_error = job.error
                            break
            if fatal_error is not None:
                for job in active:
                    job.aborted = True
                for job in pending:
                    job.aborted = True
                raise fatal_error
            if progressed or not active:
                continue
            # Every in-flight job is parked on an unready handle.  Release
            # any deferred submissions first -- this is the moment the
            # fusion pass sees all jobs' queues at once -- then sleep on
            # the blockers' futures until one resolves.
            if self.batcher.flush():
                continue
            waitables = [
                w
                for job in active
                if job.blocker is not None
                for w in (job.blocker.waitable(),)
                if w is not None
            ]
            if waitables:
                self.stats.blocked_waits += 1
                wait_futures(waitables, return_when=FIRST_COMPLETED)
            else:
                # Nothing waitable (serial/inline backend): join one
                # blocker on this thread -- the join *is* the compute, so
                # this guarantees progress.
                self.stats.inline_joins += 1
                try:
                    active[0].blocker.result()
                except BaseException:
                    # The owning job's completion event joins the same
                    # handle and turns this into a per-job failure there.
                    pass
        return self.stats

    # ---------------------------------------------------------------- phases

    def _start(self, job: OverlapJob) -> bool:
        try:
            job.run = job.prepare()
            if getattr(job.run, "_fuse", False):
                # Route fused submissions through the shared batcher so
                # groups from different jobs flush -- and batch -- together.
                job.run.batcher = self.batcher.bind(job.run.runtime.backend)
            job.run.begin()
        except BaseException as error:  # noqa: BLE001 - per-job isolation
            job.error = error
            self._settle(job)
            return False
        return True

    def _pump(self, job: OverlapJob) -> bool:
        """Advance one job until it blocks, finishes, or fails.

        Within the job this is exactly the sequential run loop: events
        fire in (time, seq) order via :meth:`Engine.step`.  The only
        deviation is *pausing* before a completion event whose handle is
        not ready -- the event still fires, later, with identical
        simulated time and ordering.
        """
        run = job.run
        engine = run.engine
        deadline = run.runtime.config.deadline
        stepped = False
        try:
            while True:
                event = engine.peek()
                if event is None or (deadline is not None and event.time > deadline):
                    self._finish(job)
                    return True
                handle = event.payload
                if handle is not None and not handle.ready():
                    job.blocker = handle
                    return stepped
                job.blocker = None
                engine.step()
                self.stats.events_stepped += 1
                stepped = True
        except BaseException as error:  # noqa: BLE001 - per-job isolation
            job.error = error
            return True

    def _finish(self, job: OverlapJob) -> None:
        run = job.run
        deadline = run.runtime.config.deadline
        if deadline is not None:
            # Advance the virtual clock to the budget (no events <= the
            # deadline remain), matching the sequential run(until=...).
            run.engine.run(until=deadline)
        job.report = run.finish()
        job.finished = True

    def _settle(self, job: OverlapJob) -> None:
        if job.on_done is not None:
            job.on_done(job)
