"""Runtime invariant checking for SHMT runs.

The paper's algorithms make hard promises the figures silently depend on:
every HLOP executes exactly once and its output lands in exactly one place,
partitions tile the VOP's output with no gap or overlap, the simulated
clock never runs backwards, a device never computes two HLOPs at once, and
energy can never exceed what every device drawing peak power for the whole
makespan would burn.  After three PRs of runtime growth (fault recovery,
observability, parallel backends + caching) those properties are enforced
nowhere -- a broken one only shows up as a figure that "looks wrong".

:class:`RunChecker` is the enforcement layer.  The runtime creates one per
run when :class:`~repro.core.runtime.RuntimeConfig` has ``validate`` set
(and the CLI exposes ``--validate``), feeds it cheap event hooks while the
run executes, and calls :meth:`RunChecker.check_run` on the finished run
artifacts.  Each failed invariant becomes a :class:`Violation` naming the
HLOP, device, and simulated time, is mirrored into the run's
:mod:`repro.obs` recorder (so it exports through the decision-log/JSONL
pipeline), and -- in the default ``raise`` mode -- aborts the run with an
:class:`InvariantViolation`.

The disabled path costs one ``is None`` test per hook site: a run without
``validate`` is bit-identical to one on a checker-unaware runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ReproError
from repro.obs.recorder import NULL_RECORDER, Recorder

#: Absolute slack for clock / span-boundary comparisons.  Matches the DES
#: engine's tolerance: float arithmetic on absolute times may land a hair
#: off, but anything beyond this is a genuine ordering bug.
TIME_TOLERANCE = 1e-9

#: Relative slack for energy-bound comparisons (sums of products).
ENERGY_RTOL = 1e-6


class InvariantViolation(ReproError):
    """A run broke one of the checked runtime invariants.

    Carries the full list of :class:`Violation` records; the message names
    the first violation's invariant, device, HLOP, and simulated time.
    """

    code = "INVARIANT_VIOLATION"

    def __init__(self, violations: Sequence["Violation"]) -> None:
        self.violations = list(violations)
        first = self.violations[0]
        extra = (
            f" (+{len(self.violations) - 1} more)" if len(self.violations) > 1 else ""
        )
        ReproError.__init__(
            self, f"invariant violated: {first}{extra}", count=len(self.violations)
        )


@dataclass(frozen=True)
class Violation:
    """One failed invariant, with enough context to find the bug."""

    invariant: str
    device: str
    time: float
    hlop_id: Optional[int] = None
    unit_id: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        where = f"[{self.invariant}] device={self.device} t={self.time:.9f}"
        if self.hlop_id is not None:
            where += f" hlop={self.hlop_id}"
        if self.unit_id is not None:
            where += f" unit={self.unit_id}"
        return f"{where}: {self.detail}"


class RunChecker:
    """Collects evidence during one run and audits the finished artifacts.

    Mid-run hooks (``on_*``) are called by :class:`~repro.core.runtime`
    at dispatch, steal, split, completion, re-queue, and aggregation;
    :meth:`observe_clock` is wired as the DES engine's clock listener.
    :meth:`check_run` then audits conservation, tiling coverage, the
    trace, and the energy bound over the completed run.
    """

    def __init__(self, recorder: Recorder = NULL_RECORDER) -> None:
        self.recorder = recorder
        self.violations: List[Violation] = []
        self._last_clock = 0.0
        #: Per-HLOP lifecycle counters (conservation evidence).
        self._dispatched: Dict[int, int] = {}
        self._completed: Dict[int, int] = {}
        self._requeued: Dict[int, int] = {}
        self._aggregated: Dict[int, int] = {}
        #: Parents consumed by a split-steal: they must never complete.
        self._retired: Set[int] = set()

    # ------------------------------------------------------------- recording

    def record(
        self,
        invariant: str,
        device: str,
        *,
        time: float,
        hlop_id: Optional[int] = None,
        unit_id: Optional[int] = None,
        detail: str = "",
    ) -> None:
        """Append one violation and mirror it into the obs pipeline."""
        violation = Violation(
            invariant=invariant,
            device=device,
            time=time,
            hlop_id=hlop_id,
            unit_id=unit_id,
            detail=detail,
        )
        self.violations.append(violation)
        self.recorder.violation(
            invariant,
            device,
            time=time,
            hlop_id=hlop_id,
            unit_id=unit_id,
            detail=detail,
        )

    def raise_if_violated(self) -> None:
        if self.violations:
            raise InvariantViolation(self.violations)

    # ----------------------------------------------------------- clock hooks

    def observe_clock(self, now: float, device: str = "engine") -> None:
        """Clock monotonicity: simulated time may never step backwards."""
        if now < self._last_clock - TIME_TOLERANCE:
            self.record(
                "clock-monotonic",
                device,
                time=now,
                detail=(
                    f"clock stepped back: {now:.9f} after reaching "
                    f"{self._last_clock:.9f}"
                ),
            )
        self._last_clock = max(self._last_clock, now)

    # ------------------------------------------------------- lifecycle hooks

    def on_dispatch(self, hlop_id: int, device: str, time: float) -> None:
        self._dispatched[hlop_id] = self._dispatched.get(hlop_id, 0) + 1

    def on_requeue(self, hlop_id: int, device: str, time: float) -> None:
        self.observe_clock(time, device)
        self._requeued[hlop_id] = self._requeued.get(hlop_id, 0) + 1

    def on_steal(
        self,
        thief: str,
        victim: str,
        taken: int,
        victim_before: int,
        victim_after: int,
        thief_before: int,
        thief_after: int,
        time: float,
    ) -> None:
        """Queue-length conservation: a steal moves work, never loses it.

        The thief immediately runs the first stolen HLOP, so its queue
        gains ``taken - 1``; the victim's queue must shrink by exactly
        ``taken``.
        """
        self.observe_clock(time, thief)
        if victim_before - victim_after != taken:
            self.record(
                "queue-conservation",
                thief,
                time=time,
                detail=(
                    f"steal of {taken} from {victim} changed the victim queue "
                    f"{victim_before}->{victim_after} (expected -{taken})"
                ),
            )
        if thief_after - thief_before != taken - 1:
            self.record(
                "queue-conservation",
                thief,
                time=time,
                detail=(
                    f"steal of {taken} from {victim} changed the thief queue "
                    f"{thief_before}->{thief_after} (expected +{taken - 1})"
                ),
            )

    def on_split(
        self, parent_id: int, child_ids: Sequence[int], device: str, time: float
    ) -> None:
        """A split-steal retires the parent and dispatches its children."""
        self.observe_clock(time, device)
        if self._completed.get(parent_id):
            self.record(
                "hlop-conservation",
                device,
                time=time,
                hlop_id=parent_id,
                detail="split-steal consumed an HLOP that already completed",
            )
        self._retired.add(parent_id)
        for child in child_ids:
            self._dispatched[child] = self._dispatched.get(child, 0) + 1

    def on_complete(
        self, hlop_id: int, device: str, start: float, finish: float, unit_id: int
    ) -> None:
        self.observe_clock(finish, device)
        if finish < start - TIME_TOLERANCE:
            self.record(
                "span-ordering",
                device,
                time=finish,
                hlop_id=hlop_id,
                unit_id=unit_id,
                detail=f"completion finished ({finish:.9f}) before it started ({start:.9f})",
            )
        count = self._completed.get(hlop_id, 0) + 1
        self._completed[hlop_id] = count
        if count > 1:
            self.record(
                "hlop-conservation",
                device,
                time=finish,
                hlop_id=hlop_id,
                unit_id=unit_id,
                detail=f"result accepted {count} times (exactly one accept allowed)",
            )
        if hlop_id in self._retired:
            self.record(
                "hlop-conservation",
                device,
                time=finish,
                hlop_id=hlop_id,
                unit_id=unit_id,
                detail="completed an HLOP already retired by a split-steal",
            )
        if self._dispatched.get(hlop_id, 0) == 0:
            self.record(
                "hlop-conservation",
                device,
                time=finish,
                hlop_id=hlop_id,
                unit_id=unit_id,
                detail="completed an HLOP that was never dispatched",
            )

    def on_aggregate(self, hlop_id: int, unit_id: int, device: str, time: float) -> None:
        count = self._aggregated.get(hlop_id, 0) + 1
        self._aggregated[hlop_id] = count
        if count > 1:
            self.record(
                "hlop-conservation",
                device,
                time=time,
                hlop_id=hlop_id,
                unit_id=unit_id,
                detail=f"aggregated {count} times (exactly once allowed)",
            )
        if self._completed.get(hlop_id, 0) == 0:
            self.record(
                "hlop-conservation",
                device,
                time=time,
                hlop_id=hlop_id,
                unit_id=unit_id,
                detail="aggregated an HLOP that never completed",
            )

    # ------------------------------------------------------------- post-run

    def check_run(
        self,
        units: Sequence[Any],
        trace: Any,
        makespan: float,
        energy: Any = None,
        energy_model: Any = None,
        devices: Sequence[Any] = (),
        horizon: Optional[float] = None,
    ) -> None:
        """Audit the finished run: conservation, coverage, trace, energy.

        ``units`` are the runtime's per-call bookkeeping records (each with
        ``hlops``, ``spec``, ``call``, ``index``); ``trace`` the run's
        :class:`~repro.sim.trace.Trace`; ``energy``/``energy_model`` the
        batch :class:`~repro.devices.energy.EnergyBreakdown` and the
        platform's model.  ``horizon`` bounds trace containment and
        defaults to ``makespan`` -- pass the engine's final clock when
        post-completion events (e.g. a device death after the last unit
        finished) legitimately extend the trace past the makespan.
        """
        for unit in units:
            self._check_conservation(unit, makespan)
            self._check_coverage(unit, makespan)
        self._check_trace(trace, makespan if horizon is None else max(horizon, makespan))
        if energy is not None and energy_model is not None:
            self._check_energy(energy, energy_model, devices, makespan)

    def _check_conservation(self, unit: Any, makespan: float) -> None:
        """Each live HLOP: dispatched >= 1, completed == 1, aggregated == 1."""
        for hlop in unit.hlops:
            hid = hlop.hlop_id
            device = hlop.device_name or "unassigned"
            if self._dispatched.get(hid, 0) < 1:
                self.record(
                    "hlop-conservation",
                    device,
                    time=makespan,
                    hlop_id=hid,
                    unit_id=unit.index,
                    detail="HLOP never dispatched to any queue",
                )
            if self._completed.get(hid, 0) != 1:
                self.record(
                    "hlop-conservation",
                    device,
                    time=makespan,
                    hlop_id=hid,
                    unit_id=unit.index,
                    detail=(
                        f"completed {self._completed.get(hid, 0)} times "
                        "(exactly once required, re-queues included)"
                    ),
                )
            if self._aggregated.get(hid, 0) != 1:
                self.record(
                    "hlop-conservation",
                    device,
                    time=makespan,
                    hlop_id=hid,
                    unit_id=unit.index,
                    detail=(
                        f"aggregated {self._aggregated.get(hid, 0)} times "
                        "(exactly once required)"
                    ),
                )

    def _check_coverage(self, unit: Any, makespan: float) -> None:
        """Partition tiling coverage: out slices tile the output exactly.

        Reduction kernels merge one partial per HLOP (covered by the
        aggregation counters); everything else must paint every output
        cell exactly once.
        """
        spec = unit.spec
        if spec.reduces:
            return
        shape = unit.call.data.shape
        n_axes = len(unit.hlops[0].partition.out_slices) if unit.hlops else 0
        if n_axes == 0 or len(shape) < n_axes:
            return
        trailing = shape[-n_axes:]
        coverage = np.zeros(trailing, dtype=np.int16)
        for hlop in unit.hlops:
            coverage[hlop.partition.out_slices] += 1
        if np.all(coverage == 1):
            return
        gaps = int(np.count_nonzero(coverage == 0))
        overlaps = int(np.count_nonzero(coverage > 1))
        offender: Optional[int] = None
        for hlop in unit.hlops:
            region = coverage[hlop.partition.out_slices]
            if region.size and (np.any(region > 1) or np.any(region == 0)):
                offender = hlop.hlop_id
                break
        self.record(
            "tiling-coverage",
            "host",
            time=makespan,
            hlop_id=offender,
            unit_id=unit.index,
            detail=(
                f"output {tuple(trailing)} covered with {gaps} gap cell(s) "
                f"and {overlaps} overlap cell(s); expected exact tiling"
            ),
        )

    def _check_trace(self, trace: Any, makespan: float) -> None:
        """Span containment and per-resource serialization.

        Every span lies inside ``[0, makespan]``; within one resource, the
        serialized activity groups (compute+faulted on a device, its
        transfer engine, the host pipeline) never overlap -- a device
        cannot run two HLOPs at once.
        """
        groups: Dict[Tuple[str, str], List[Any]] = {}
        for span in trace.spans:
            if span.end < span.start - TIME_TOLERANCE:
                self.record(
                    "span-ordering",
                    span.resource,
                    time=span.start,
                    detail=f"span {span.label!r} ends before it starts",
                )
            if span.start < -TIME_TOLERANCE or span.end > makespan + TIME_TOLERANCE:
                self.record(
                    "span-containment",
                    span.resource,
                    time=span.start,
                    detail=(
                        f"span {span.label!r} [{span.start:.9f}, {span.end:.9f}] "
                        f"outside the run's [0, {makespan:.9f}]"
                    ),
                )
            group = "compute" if span.category in ("compute", "faulted") else span.category
            groups.setdefault((span.resource, group), []).append(span)
        for marker in trace.markers:
            if marker.time < -TIME_TOLERANCE or marker.time > makespan + TIME_TOLERANCE:
                self.record(
                    "span-containment",
                    marker.resource,
                    time=marker.time,
                    detail=f"marker {marker.label!r} outside the run's [0, {makespan:.9f}]",
                )
        for (resource, group), spans in groups.items():
            spans.sort(key=lambda s: (s.start, s.end))
            for left, right in zip(spans, spans[1:]):
                if right.start < left.end - TIME_TOLERANCE:
                    self.record(
                        "span-serialization",
                        resource,
                        time=right.start,
                        detail=(
                            f"{group} spans overlap: {left.label!r} "
                            f"[{left.start:.9f}, {left.end:.9f}] and "
                            f"{right.label!r} [{right.start:.9f}, {right.end:.9f}]"
                        ),
                    )

    def _check_energy(
        self, energy: Any, energy_model: Any, devices: Sequence[Any], makespan: float
    ) -> None:
        """Energy can never exceed max power times makespan."""
        duration = energy.duration or makespan
        class_counts: Dict[str, int] = {}
        for device in devices:
            cls = device.device_class
            class_counts[cls] = class_counts.get(cls, 0) + 1
        for cls, joules in energy.per_device_active.items():
            watts = energy_model.active_watts.get(cls, 0.0)
            bound = watts * class_counts.get(cls, 1) * duration
            if joules > bound * (1.0 + ENERGY_RTOL) + TIME_TOLERANCE:
                self.record(
                    "energy-bound",
                    cls,
                    time=duration,
                    detail=(
                        f"active energy {joules:.9g} J exceeds "
                        f"{class_counts.get(cls, 1)} x {watts:.3f} W x "
                        f"{duration:.9f} s = {bound:.9g} J"
                    ),
                )
        max_watts = energy_model.idle_watts + sum(
            energy_model.active_watts.get(cls, 0.0) * count
            for cls, count in class_counts.items()
        )
        bound = max_watts * duration
        if energy.total_joules > bound * (1.0 + ENERGY_RTOL) + TIME_TOLERANCE:
            self.record(
                "energy-bound",
                "platform",
                time=duration,
                detail=(
                    f"total energy {energy.total_joules:.9g} J exceeds "
                    f"max power {max_watts:.3f} W x makespan {duration:.9f} s "
                    f"= {bound:.9g} J"
                ),
            )
