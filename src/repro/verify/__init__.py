"""Correctness tooling: runtime invariant checking + differential testing.

Two halves:

* :mod:`repro.verify.invariants` -- the :class:`RunChecker` the runtime
  wires in under ``RuntimeConfig(validate=True)`` (CLI ``--validate``).
  Violations flow through the run's :mod:`repro.obs` recorder and raise
  :class:`InvariantViolation`.
* :mod:`repro.verify.differential` / :mod:`repro.verify.fuzz` -- the
  metamorphic harness and the dependency-free fuzzer behind
  ``scripts/verify_check.py``.  Imported explicitly (not re-exported
  here): they import the runtime, which itself imports this package for
  :class:`RunChecker`.
"""

from repro.verify.invariants import InvariantViolation, RunChecker, Violation

__all__ = ["InvariantViolation", "RunChecker", "Violation"]
