"""Differential / metamorphic checks over the SHMT runtime.

Invariant checking (:mod:`repro.verify.invariants`) audits one run's
internal accounting; the checks here compare *across* runs, catching the
bugs single-run assertions cannot see:

* :func:`check_policy_equivalence` -- on an all-exact platform, every
  scheduling policy is just a different order of the same float32 block
  computations, so each kernel's output must be **bit-identical** across
  policies.  Any divergence means a policy influenced numerics (an
  aggregation gap, a device leaking state, a cache serving the wrong
  block).
* :func:`check_shuffle_invariance` -- the quantized (EdgeTPU) path derives
  its stochastic residual from a per-HLOP seed that is a pure function of
  ``(run seed, hlop_id)``, never of dispatch order.  Executing the same
  HLOPs in shuffled order must therefore reassemble to the bit-identical
  output.  Divergence means order leaked into the numerics (shared RNG
  state, in-place block mutation).
* :func:`check_fuse_equivalence` -- the fusion/batching pass
  (:mod:`repro.exec.fuse`) changes *how* HLOP numerics are dispatched
  (chained submissions, stacked evaluation), never *what* they compute.
  Every kernel under every policy -- exact policies and the
  quantized-path QAWS policy on the mixed platform -- must produce
  bit-identical outputs and bit-identical makespans with fusion on and
  off.  Divergence means a batched evaluation broke the
  batch-invariance contract or fusion leaked into the DES timeline.
* :func:`check_dag_equivalence` -- every step of a DAG run executes as
  its own single-call run, so the DAG schedule (serial vs ready-set) and
  the DAG policy (step / partition / mixed) must never change a step's
  bits -- per policy on the mixed platform, and across policies on the
  all-exact platform.

All return a list of human-readable failure strings (empty = pass), so
``scripts/verify_check.py`` can aggregate them across a sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.partition import PartitionConfig, plan_partitions
from repro.core.runtime import RuntimeConfig, SHMTRuntime
from repro.core.schedulers.base import make_scheduler
from repro.devices.cpu import CPUDevice
from repro.devices.edgetpu import EdgeTPUDevice
from repro.devices.gpu import GPUDevice
from repro.devices.platform import Platform, gpu_only_platform
from repro.exec.task import ComputeTask
from repro.kernels.common import replicate_pad
from repro.kernels.registry import ParallelModel
from repro.workloads.generator import generate

#: Policies whose plans only ever touch exact (rank-0) devices on an
#: all-exact platform; the equivalence sweep runs each of these.
EXACT_POLICIES = ("gpu-baseline", "even-distribution", "work-stealing", "oracle")

#: The kernel x size grid the quick differential sweep covers: one kernel
#: per parallel model / aggregation style.
DEFAULT_KERNELS: Tuple[Tuple[str, object], ...] = (
    ("sobel", (128, 128)),
    ("fft", (128, 128)),
    ("histogram", 128 * 128),
    ("blackscholes", 128 * 128),
    ("dct8x8", (128, 128)),
)


def exact_platform() -> Platform:
    """An all-exact platform with enough devices to genuinely distribute.

    Two GPUs so the gpu-class policies (even-distribution) split work, plus
    a CPU so work stealing crosses device classes -- every device is exact
    float32, so outputs must not depend on who computed what.
    """
    return Platform(devices=[CPUDevice("cpu0"), GPUDevice("gpu0"), GPUDevice("gpu1")])


def _run(
    policy: str,
    platform: Platform,
    kernel: str,
    size,
    seed: int,
    config: RuntimeConfig,
) -> np.ndarray:
    runtime = SHMTRuntime(platform, make_scheduler(policy), config)
    return runtime.execute(generate(kernel, size=size, seed=seed)).output


def check_policy_equivalence(
    kernels: Sequence[Tuple[str, object]] = DEFAULT_KERNELS,
    seed: int = 7,
    partition: Optional[PartitionConfig] = None,
    validate: bool = True,
) -> List[str]:
    """Exact-device policies must agree bitwise per kernel.

    The reference is ``gpu-baseline`` on the single-GPU platform (the
    paper's baseline); every other exact policy runs on
    :func:`exact_platform` and must reproduce the same bits.
    """
    partition = partition or PartitionConfig(target_partitions=16)
    config = RuntimeConfig(partition=partition, seed=seed, validate=validate)
    failures: List[str] = []
    for kernel, size in kernels:
        reference = _run("gpu-baseline", gpu_only_platform(), kernel, size, seed, config)
        for policy in EXACT_POLICIES:
            platform = (
                gpu_only_platform() if policy == "gpu-baseline" else exact_platform()
            )
            output = _run(policy, platform, kernel, size, seed, config)
            if output.shape != reference.shape:
                failures.append(
                    f"{kernel}/{policy}: output shape {output.shape} != "
                    f"reference {reference.shape}"
                )
            elif not np.array_equal(output, reference):
                diverging = int(np.count_nonzero(output != reference))
                failures.append(
                    f"{kernel}/{policy}: {diverging} of {output.size} output "
                    "elements differ from the gpu-baseline reference "
                    "(exact policies must be bit-identical)"
                )
    return failures


def check_fuse_equivalence(
    kernels: Sequence[Tuple[str, object]] = DEFAULT_KERNELS,
    seed: int = 7,
    partition: Optional[PartitionConfig] = None,
    backends: Sequence[str] = ("serial", "pool"),
) -> List[str]:
    """Fused runs must be bit-identical to unfused runs, timelines included.

    Covers every exact policy on :func:`exact_platform` plus ``QAWS-TS``
    on the mixed Jetson platform, so the EdgeTPU's batched quantization
    path (:func:`repro.kernels.npu.npu_execute_batch`) is exercised, not
    just the exact stacked path.
    """
    from repro.devices.platform import jetson_nano_platform

    partition = partition or PartitionConfig(target_partitions=16)
    base = RuntimeConfig(partition=partition, seed=seed)
    sweeps: List[Tuple[str, Platform]] = [
        (policy, gpu_only_platform() if policy == "gpu-baseline" else exact_platform())
        for policy in EXACT_POLICIES
    ]
    sweeps.append(("QAWS-TS", jetson_nano_platform()))
    failures: List[str] = []
    for kernel, size in kernels:
        for policy, platform in sweeps:
            call = generate(kernel, size=size, seed=seed)
            plain = SHMTRuntime(platform, make_scheduler(policy), base).execute(call)
            for backend in backends:
                fused_config = RuntimeConfig(
                    partition=partition,
                    seed=seed,
                    backend=backend,
                    jobs=2,
                    fuse=True,
                )
                fused = SHMTRuntime(
                    platform, make_scheduler(policy), fused_config
                ).execute(generate(kernel, size=size, seed=seed))
                where = f"{kernel}/{policy}/{backend}+fuse"
                if not np.array_equal(fused.output, plain.output):
                    diverging = int(
                        np.count_nonzero(fused.output != plain.output)
                    )
                    failures.append(
                        f"{where}: {diverging} of {fused.output.size} output "
                        "elements differ from the unfused run (fusion must "
                        "be bit-identical)"
                    )
                if fused.makespan != plain.makespan:
                    failures.append(
                        f"{where}: makespan {fused.makespan} != unfused "
                        f"{plain.makespan} (fusion leaked into the timeline)"
                    )
    return failures


def check_overlap_equivalence(
    kernels: Sequence[Tuple[str, object]] = DEFAULT_KERNELS,
    seed: int = 7,
    partition: Optional[PartitionConfig] = None,
    fault_plan=None,
    policies: Sequence[str] = ("work-stealing", "QAWS-TS"),
    fuse: bool = False,
    validate: bool = True,
) -> List[str]:
    """Overlapped multi-job execution must match sequential runs bitwise.

    The overlap driver (:mod:`repro.core.overlap`) interleaves the
    *wall-clock* dispatch of many jobs' event loops; each job's virtual
    timeline must be untouched.  The sequential reference for a batch of
    calls is one run per call (``execute_batch([call])`` -- each
    overlapped job owns its own engine, rng stream, and HLOP id space,
    exactly like a single-call batch).  Outputs, per-job makespans, and
    degradation flags must all be bit-identical, with or without a chaos
    ``fault_plan`` and with or without fusion -- divergence means the
    interleaving leaked into a job's schedule, rng, or numerics.
    """
    from repro.devices.platform import jetson_nano_platform

    partition = partition or PartitionConfig(target_partitions=16)
    failures: List[str] = []
    for policy in policies:

        def platform() -> Platform:
            return (
                exact_platform()
                if policy in EXACT_POLICIES
                else jetson_nano_platform()
            )

        base = dict(
            partition=partition,
            seed=seed,
            validate=validate,
            fault_plan=fault_plan,
            fuse=fuse,
        )
        sequential = [
            SHMTRuntime(
                platform(), make_scheduler(policy), RuntimeConfig(**base)
            ).execute_batch([generate(kernel, size=size, seed=seed)])
            for kernel, size in kernels
        ]
        overlapped = SHMTRuntime(
            platform(), make_scheduler(policy), RuntimeConfig(overlap=True, **base)
        ).execute_batch(
            [generate(kernel, size=size, seed=seed) for kernel, size in kernels]
        )
        if len(overlapped.reports) != len(kernels):
            failures.append(
                f"{policy}: overlapped batch returned "
                f"{len(overlapped.reports)} reports for {len(kernels)} calls"
            )
            continue
        tags = ("+fuse" if fuse else "") + ("+faults" if fault_plan else "")
        for (kernel, _), seq_batch, job in zip(
            kernels, sequential, overlapped.reports
        ):
            reference = seq_batch.reports[0]
            where = f"{kernel}/{policy}{tags}"
            if not np.array_equal(job.output, reference.output):
                diverging = int(np.count_nonzero(job.output != reference.output))
                failures.append(
                    f"{where}: {diverging} of {job.output.size} output elements "
                    "differ between overlapped and sequential execution"
                )
            if job.makespan != reference.makespan:
                failures.append(
                    f"{where}: overlapped makespan {job.makespan} != sequential "
                    f"{reference.makespan} (overlap leaked into the timeline)"
                )
            if job.degraded != reference.degraded:
                failures.append(
                    f"{where}: degraded flag {job.degraded} != sequential "
                    f"{reference.degraded}"
                )
    return failures


def check_dag_equivalence(
    side: int = 96,
    seed: int = 7,
    partition: Optional[PartitionConfig] = None,
    fault_plan=None,
    validate: bool = True,
) -> List[str]:
    """DAG schedules and policies must never touch step numerics.

    Every step of a DAG run executes as its own single-call run with a
    placement decided from graph structure alone, so for each policy the
    ``serial`` and ``ready`` schedules must produce bit-identical
    per-step outputs -- on the mixed Jetson platform included, where any
    order leakage would surface through the EdgeTPU residual.  On the
    all-exact platform the *policies* must agree bitwise too (placement
    only permutes identical float32 block computations, same argument as
    :func:`check_policy_equivalence`).  With a chaos ``fault_plan`` the
    per-policy schedule equivalence must survive mid-DAG device death:
    the dying step recovers by requeueing identically in both schedules.
    """
    from repro.core.graph import DAG_POLICIES
    from repro.devices.platform import jetson_nano_platform
    from repro.workloads.dag import image_pipeline_graph, solver_graph

    partition = partition or PartitionConfig(target_partitions=16)
    config = RuntimeConfig(
        partition=partition, seed=seed, validate=validate, fault_plan=fault_plan
    )
    failures: List[str] = []
    workloads = (
        ("image-pipeline", lambda: image_pipeline_graph(side=side, seed=seed)),
        ("solver", lambda: solver_graph(side=side, steps=3, seed=seed)),
    )
    tags = "+faults" if fault_plan is not None else ""
    for workload, build in workloads:
        exact_outputs: Dict[str, np.ndarray] = {}
        exact_origin: Dict[str, str] = {}
        for policy in DAG_POLICIES:
            per_schedule = {}
            for schedule in ("serial", "ready"):
                runtime = SHMTRuntime(
                    jetson_nano_platform(), make_scheduler("QAWS-TS"), config
                )
                per_schedule[schedule] = build().run(
                    runtime, schedule=schedule, policy=policy
                )
            serial_run = per_schedule["serial"]
            ready_run = per_schedule["ready"]
            for name in serial_run.order:
                a = serial_run.reports[name].output
                b = ready_run.reports[name].output
                if not np.array_equal(a, b):
                    diverging = int(np.count_nonzero(a != b))
                    failures.append(
                        f"{workload}/{policy}{tags}: step {name!r}: {diverging} "
                        f"of {a.size} elements differ between serial and "
                        "ready-set execution (schedule leaked into numerics)"
                    )
            if fault_plan is not None:
                continue
            # Cross-policy comparison needs exact devices: DAG policies
            # place steps on different device subsets, which on the
            # mixed platform legitimately shifts the approximate path.
            for schedule in ("serial", "ready"):
                runtime = SHMTRuntime(
                    exact_platform(), make_scheduler("work-stealing"), config
                )
                result = build().run(runtime, schedule=schedule, policy=policy)
                for name in result.order:
                    output = result.reports[name].output
                    origin = f"{policy}/{schedule}"
                    if name not in exact_outputs:
                        exact_outputs[name] = output
                        exact_origin[name] = origin
                    elif not np.array_equal(output, exact_outputs[name]):
                        diverging = int(
                            np.count_nonzero(output != exact_outputs[name])
                        )
                        failures.append(
                            f"{workload}/{origin}: step {name!r}: {diverging} "
                            f"of {output.size} elements differ from "
                            f"{exact_origin[name]} on the all-exact platform "
                            "(policies must be bit-identical there)"
                        )
    return failures


def _hlop_seed(run_seed: int, hlop_id: int) -> int:
    """The runtime's per-HLOP seed formula (order-independent by design)."""
    return (run_seed * 1_000_003 + hlop_id) % (2**31 - 1)


def check_shuffle_invariance(
    kernels: Sequence[Tuple[str, object]] = DEFAULT_KERNELS,
    seed: int = 7,
    shuffle_seed: int = 1234,
    partition: Optional[PartitionConfig] = None,
) -> List[str]:
    """Quantized outputs must not depend on HLOP execution order.

    Runs every partition of each kernel through the EdgeTPU's approximate
    path directly (as :class:`~repro.exec.task.ComputeTask`, exactly like
    the runtime does), once in natural order and once in a seeded shuffle,
    and compares the reassembled per-partition results bitwise.
    """
    partition = partition or PartitionConfig(target_partitions=16)
    failures: List[str] = []
    for kernel, size in kernels:
        call = generate(kernel, size=size, seed=seed)
        spec = call.spec
        partitions = plan_partitions(spec, call.data.shape, partition)
        device = EdgeTPUDevice("tpu0")
        ctx = call.resolve_context()
        padded = (
            replicate_pad(call.data, spec.halo)
            if spec.model is ParallelModel.TILE and spec.halo
            else call.data
        )

        def _execute(order: Sequence[int]) -> Dict[int, np.ndarray]:
            results: Dict[int, np.ndarray] = {}
            for position in order:
                part = partitions[position]
                task = ComputeTask(
                    device=device,
                    compute=spec.compute,
                    block=part.input_block(padded),
                    ctx=ctx,
                    error_scale=spec.calibration.npu_error_scale,
                    seed=_hlop_seed(seed, part.index),
                    channel_axis=spec.channel_axis,
                    quantize_output=not spec.reduces,
                    tensor_compute=spec.tensor_compute,
                    kernel=spec.name,
                    hlop_id=part.index,
                )
                results[part.index] = task.run()
            return results

        natural = _execute(range(len(partitions)))
        shuffled_order = np.random.default_rng(shuffle_seed).permutation(
            len(partitions)
        )
        shuffled = _execute(int(i) for i in shuffled_order)
        for index in range(len(partitions)):
            if not np.array_equal(natural[index], shuffled[index]):
                failures.append(
                    f"{kernel}: partition {index} differs between natural and "
                    "shuffled execution order (quantized path leaked order "
                    "into its numerics)"
                )
                break
    return failures
