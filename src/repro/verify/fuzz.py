"""A small dependency-free fuzzer for the SHMT runtime.

Sweeps kernel x shape (ragged / tiny / 1-D) x seed x policy x fault plan,
running every case under full invariant checking
(:class:`~repro.core.runtime.RuntimeConfig` ``validate=True``) and
recording any case whose run violates an invariant, crashes unexpectedly,
or produces a wrong-shaped / non-finite output.  Failures are
**minimized** -- faults dropped, shape shrunk, policy simplified, while
the failure reproduces -- so a red case is already close to its root
cause, and the minimized tuples are what ``tests/verify/test_regressions.py``
checks in as the regression corpus.

Everything is deterministic in the master seed: the same seed always
visits the same cases in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.partition import PartitionConfig
from repro.core.runtime import RuntimeConfig, SHMTRuntime
from repro.core.schedulers.base import make_scheduler
from repro.devices.platform import jetson_nano_platform
from repro.faults.plan import (
    DeviceDeath,
    FaultPlan,
    OutputCorruption,
    Straggler,
    TransientFaults,
)
from repro.kernels.registry import ParallelModel
from repro.verify.invariants import InvariantViolation
from repro.workloads.generator import generate

Shape = Union[int, Tuple[int, ...]]

#: Per-kernel shape pools, ordered simplest-first (minimization walks
#: toward the head).  Ragged, thin, and 1-D shapes are deliberate: the
#: page-granular planner and the samplers earn their edge cases there.
SHAPE_POOLS = {
    "sobel": [(3, 5), (1, 128), (2, 257), (37, 91), (64, 64)],
    "dct8x8": [(8, 8), (8, 104), (16, 40), (64, 64)],
    "fft": [(1, 64), (3, 128), (2, 1024), (64, 64)],
    "histogram": [3, 100, 1025, 4096],
    "blackscholes": [2, 333, 2048],
}

#: Policies the fuzzer exercises, simplest-first for minimization.
POLICY_POOL = ("gpu-baseline", "even-distribution", "work-stealing", "QAWS-TS")

#: Policies running on a single device class: a device death would leave
#: them no recovery target, so the ``death`` preset skips them.
SINGLE_DEVICE = {"gpu-baseline", "edge-tpu-only", "sw-pipelining"}

#: Fault-plan presets, simplest-first.
FAULT_PRESETS = ("none", "transient", "chaos", "death")

#: Partition presets: the default grid and a deliberately tiny-granularity
#: one that forces multi-partition plans even on small inputs.
PARTITION_PRESETS = {
    "default": PartitionConfig(target_partitions=16),
    "tiny": PartitionConfig(
        target_partitions=8, page_bytes=64, min_tile_side=4
    ),
}


def fault_plan_for(preset: str, policy: str) -> Optional[FaultPlan]:
    """Build the preset's plan (``None`` = fault-free)."""
    if preset == "none":
        return None
    transient = (TransientFaults("*", probability=0.05),)
    if preset == "transient":
        return FaultPlan(transient=transient)
    stragglers = (Straggler("tpu0", slowdown=8.0, start=2e-4),)
    corruption = (OutputCorruption("cpu0", probability=0.3),)
    if preset == "chaos":
        return FaultPlan(
            transient=transient, stragglers=stragglers, corruption=corruption
        )
    deaths = (
        (DeviceDeath("gpu0", at_time=5e-4),)
        if policy not in SINGLE_DEVICE
        else ()
    )
    return FaultPlan(
        transient=transient,
        deaths=deaths,
        stragglers=stragglers,
        corruption=corruption,
    )


@dataclass(frozen=True)
class FuzzCase:
    """One fuzzer input: everything needed to reproduce a run."""

    kernel: str
    shape: Shape
    seed: int
    policy: str = "QAWS-TS"
    faults: str = "none"
    partitions: str = "default"

    def __str__(self) -> str:
        return (
            f"{self.kernel} shape={self.shape} seed={self.seed} "
            f"policy={self.policy} faults={self.faults} "
            f"partitions={self.partitions}"
        )


def run_case(case: FuzzCase) -> Optional[str]:
    """Run one case under full validation; return the failure (or ``None``).

    A failure is an invariant violation, an unexpected exception, or an
    output with the wrong shape / non-finite values.  ``ValueError`` from
    workload or partition constraints means the case itself is illegal
    (e.g. a non-multiple-of-8 DCT input) and counts as a pass.
    """
    config = RuntimeConfig(
        partition=PARTITION_PRESETS[case.partitions],
        seed=case.seed,
        validate=True,
        fault_plan=fault_plan_for(case.faults, case.policy),
    )
    try:
        call = generate(case.kernel, size=case.shape, seed=case.seed)
        runtime = SHMTRuntime(
            jetson_nano_platform(), make_scheduler(case.policy), config
        )
        report = runtime.execute(call)
    except ValueError:
        return None  # illegal case, not a runtime bug
    except InvariantViolation as violation:
        return f"invariant: {violation}"
    except Exception as error:  # noqa: BLE001 - any crash is a finding
        return f"crash: {type(error).__name__}: {error}"
    if not call.spec.reduces:
        # Leading axes may legitimately change (blackscholes maps 5 param
        # rows to 2 price rows); the axes the parallel model *partitions*
        # must round-trip: the last axis for VECTOR, the last two for
        # ROWS/TILE.
        trailing = 1 if call.spec.model is ParallelModel.VECTOR else 2
        if report.output.shape[-trailing:] != call.data.shape[-trailing:]:
            return (
                f"output trailing axes {report.output.shape[-trailing:]} != "
                f"input {call.data.shape[-trailing:]}"
            )
    if config.fault_plan is None and not np.all(np.isfinite(report.output)):
        return "non-finite output on a fault-free run"
    return None


def generate_cases(n_cases: int = 60, master_seed: int = 0) -> List[FuzzCase]:
    """The deterministic case schedule for one fuzzing session."""
    rng = np.random.default_rng(master_seed)
    kernels = sorted(SHAPE_POOLS)
    cases = []
    for _ in range(n_cases):
        kernel = kernels[int(rng.integers(len(kernels)))]
        pool = SHAPE_POOLS[kernel]
        cases.append(
            FuzzCase(
                kernel=kernel,
                shape=pool[int(rng.integers(len(pool)))],
                seed=int(rng.integers(10_000)),
                policy=POLICY_POOL[int(rng.integers(len(POLICY_POOL)))],
                faults=FAULT_PRESETS[int(rng.integers(len(FAULT_PRESETS)))],
                partitions=("default", "tiny")[int(rng.integers(2))],
            )
        )
    return cases


def minimize(case: FuzzCase) -> FuzzCase:
    """Shrink a failing case while it keeps failing (fixed point).

    Simplification order: drop the fault plan, walk the shape toward the
    pool's simplest entry, default the partition preset, simplify the
    policy.  Each accepted step must still reproduce *a* failure (not
    necessarily the identical message -- the fuzzer minimizes toward the
    nearest bug, which is what a regression test wants to pin).
    """
    if run_case(case) is None:
        return case
    current = case
    changed = True
    while changed:
        changed = False
        candidates: List[FuzzCase] = []
        if current.faults != "none":
            candidates.append(replace(current, faults="none"))
        pool = SHAPE_POOLS[current.kernel]
        position = pool.index(current.shape) if current.shape in pool else len(pool)
        for simpler in pool[:position]:
            candidates.append(replace(current, shape=simpler))
        if current.partitions != "default":
            candidates.append(replace(current, partitions="default"))
        policy_position = (
            POLICY_POOL.index(current.policy)
            if current.policy in POLICY_POOL
            else len(POLICY_POOL)
        )
        for simpler in POLICY_POOL[:policy_position]:
            candidates.append(replace(current, policy=simpler))
        for candidate in candidates:
            if run_case(candidate) is not None:
                current = candidate
                changed = True
                break
    return current


def fuzz(
    n_cases: int = 60, master_seed: int = 0, verbose: bool = False
) -> List[Tuple[FuzzCase, str]]:
    """Run a session; returns (minimized case, failure) per failing case."""
    failures: List[Tuple[FuzzCase, str]] = []
    for case in generate_cases(n_cases, master_seed):
        failure = run_case(case)
        if failure is not None:
            small = minimize(case)
            failures.append((small, run_case(small) or failure))
            if verbose:
                print(f"  FAIL {small}: {failures[-1][1]}")
        elif verbose:
            print(f"  ok   {case}")
    return failures
