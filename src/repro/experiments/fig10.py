"""Figure 10: energy consumption and energy-delay product.

The paper splits each run's wall-plug energy into active and idle
components, normalizes to the GPU baseline's total, and also reports the
relative EDP.  Headline: SHMT with QAWS-TS consumes 51.0% less energy and
78% less EDP than the GPU baseline, because the 1.95x speedup more than
pays for the Edge TPU's extra 0.56 W.

Every value here is integrated from the simulated timeline with the
paper's measured power levels (idle 3.02 W, GPU +1.65 W, TPU +0.56 W).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentContext, ExperimentSettings, FigureResult

SHMT_POLICY = "QAWS-TS"


def run(
    settings: Optional[ExperimentSettings] = None,
    ctx: Optional[ExperimentContext] = None,
) -> FigureResult:
    ctx = ctx or ExperimentContext(settings)
    kernels = list(ctx.settings.kernels)
    series = {
        "baseline active": [],
        "baseline idle": [],
        "SHMT active": [],
        "SHMT idle": [],
        "SHMT energy": [],
        "SHMT EDP": [],
    }
    for kernel in kernels:
        baseline = ctx.run(kernel, "gpu-baseline")
        shmt = ctx.run(kernel, SHMT_POLICY)
        base_total = baseline.energy.total_joules
        series["baseline active"].append(baseline.energy.active_joules / base_total)
        series["baseline idle"].append(baseline.energy.idle_joules / base_total)
        series["SHMT active"].append(shmt.energy.active_joules / base_total)
        series["SHMT idle"].append(shmt.energy.idle_joules / base_total)
        series["SHMT energy"].append(shmt.energy.total_joules / base_total)
        series["SHMT EDP"].append(shmt.energy.edp / baseline.energy.edp)
    result = FigureResult(
        name="Figure 10: energy and EDP normalized to GPU baseline",
        kernels=kernels,
        series=series,
    )
    result.compute_gmeans()
    return result
