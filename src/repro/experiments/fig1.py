"""Figure 1: execution-model comparison on a multi-function application.

The paper's Figure 1 is a schematic -- five functions (A..E) on five
compute resources under (a) conventional delegation, (b) software
pipelining, and (c) SHMT.  This experiment *measures* that schematic on
the simulated platform: the same five-function program runs under

* **conventional**: every function delegated exclusively to its single
  best device (the faster of GPU/Edge TPU per the Figure 2 ratios),
  functions serialized;
* **SHMT, serial VOPs**: each function an SHMT VOP across all devices
  (QAWS-TS), functions serialized;
* **SHMT, concurrent**: the paper's full picture -- the program levelized
  by data dependencies and each level's functions sharing every device
  simultaneously (``execute_batch``).

Reported per style: end-to-end time, speedup over conventional, and mean
device utilization -- the quantity Figure 1's idle slots depict.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.core.program import Program
from repro.core.runtime import SHMTRuntime
from repro.core.schedulers.base import make_scheduler
from repro.core.vop import VOPCall
from repro.devices.edgetpu import EdgeTPUDevice
from repro.devices.perf_model import CALIBRATION
from repro.devices.platform import Platform, gpu_only_platform, jetson_nano_platform
from repro.experiments.common import ExperimentSettings, FigureResult
from repro.workloads.generator import generate

#: The five functions of the Figure 1 schematic, instantiated as kernels.
PROGRAM_STEPS = (
    ("A", "Mean_Filter", "mean_filter", None),
    ("B", "Sobel", "sobel", None),
    ("C", "Laplacian", "laplacian", None),
    ("D", "DCT8x8", "dct8x8", "A"),
    ("E", "SRAD", "srad", "A"),
)


def _build_program(frame: np.ndarray) -> Program:
    program = Program()
    for name, opcode, _kernel, source in PROGRAM_STEPS:
        program.add(name, opcode, frame if source is None else source)
    return program


def _conventional_time(
    frame: np.ndarray, settings: ExperimentSettings
) -> "tuple[float, float]":
    """Serial best-single-device delegation; returns (time, mean util)."""
    config = settings.runtime_config
    gpu_runtime = SHMTRuntime(
        gpu_only_platform(), make_scheduler("gpu-baseline"), config=config
    )
    tpu_runtime = SHMTRuntime(
        Platform(devices=[EdgeTPUDevice()]),
        make_scheduler("edge-tpu-only"),
        config=config,
    )
    total = 0.0
    busy = 0.0
    outputs: Dict[str, np.ndarray] = {}
    for name, opcode, kernel, source in PROGRAM_STEPS:
        data = frame if source is None else outputs[source]
        runtime = tpu_runtime if CALIBRATION[kernel].tpu_speedup > 1.0 else gpu_runtime
        report = runtime.execute(VOPCall(opcode, data, label=name))
        outputs[name] = report.output
        total += report.makespan
        busy += report.device_busy_seconds
    # Three devices exist; only one works at a time.
    mean_utilization = busy / (3 * total) if total else 0.0
    return total, mean_utilization


def _shmt_time(
    frame: np.ndarray, concurrent: bool, settings: ExperimentSettings
) -> "tuple[float, float]":
    runtime = SHMTRuntime(
        jetson_nano_platform(),
        make_scheduler("QAWS-TS"),
        config=settings.runtime_config,
    )
    program = _build_program(frame)
    result = program.run(runtime, concurrent=concurrent)
    if concurrent:
        # Each dependency level runs as one batch whose clock restarts at
        # zero, so the program time is the sum over levels of each level's
        # batch extent (the max per-call finish within the level).
        total = sum(
            max(result.reports[step.name].makespan for step in level)
            for level in program.levels()
        )
    else:
        total = result.total_time
    busy = sum(result.reports[name].device_busy_seconds for name in result.order)
    mean_utilization = busy / (3 * total) if total else 0.0
    return total, mean_utilization


def _frame_side(settings: ExperimentSettings) -> int:
    """Frame side length, threading any reduced --quick size through.

    The side is floored to a multiple of 32 so every program step's tile
    constraints (DCT8x8's block multiple included) stay satisfied.
    """
    if settings.size is None:
        return 1024
    side = int(math.isqrt(int(settings.size)))
    return max(32, (side // 32) * 32)


def run(settings: Optional[ExperimentSettings] = None, **_ignored) -> FigureResult:
    settings = settings or ExperimentSettings()
    side = _frame_side(settings)
    frame = generate("sobel", size=(side, side), seed=settings.seed).data

    conventional_time, conventional_util = _conventional_time(frame, settings)
    serial_time, serial_util = _shmt_time(frame, concurrent=False, settings=settings)
    concurrent_time, concurrent_util = _shmt_time(frame, concurrent=True, settings=settings)

    times = [conventional_time, serial_time, concurrent_time]
    utils = [conventional_util, serial_util, concurrent_util]
    speedups = [conventional_time / t for t in times]
    result = FigureResult(
        name="Figure 1: execution models on a five-function program",
        kernels=["conventional", "SHMT-serial", "SHMT-concurrent"],
        series={
            "time (ms)": [t * 1e3 for t in times],
            "speedup": speedups,
            "mean device utilization": utils,
        },
    )
    return result
