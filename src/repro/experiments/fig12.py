"""Figure 12: SHMT speedup vs. problem size.

The paper sweeps total problem size from 4K to 64M elements and shows
QAWS-TS speedup *growing* with size: small problems yield too few
page-granular HLOPs to keep three devices busy, and fixed per-HLOP costs
(kernel launch, NPU invocation, dispatch) dominate their tiny compute.

The same mechanisms are in the simulation, so the curve emerges rather
than being programmed: at 4K elements there are ~4 HLOPs and SHMT roughly
ties the baseline; by 16M+ the calibrated asymptote is reached.

The default sweep stops at 16M elements to keep the harness quick; pass
``max_elements=64 * 2**20`` for the paper's full range (the numerics at
64M move gigabytes through numpy).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.experiments.common import (
    BASELINE,
    ExperimentContext,
    ExperimentSettings,
    FigureResult,
)

SHMT_POLICY = "QAWS-TS"
FULL_RANGE = (4 * 2**10, 16 * 2**10, 64 * 2**10, 256 * 2**10, 2**20, 4 * 2**20, 16 * 2**20, 64 * 2**20)


def run(
    settings: Optional[ExperimentSettings] = None,
    max_elements: Optional[int] = None,
) -> FigureResult:
    if settings is None:
        settings = ExperimentSettings()
    if max_elements is None:
        # Thread any reduced --quick size through: a settings-level size
        # caps the sweep, so the quick suite does not wander off to 16M
        # elements (which alone used to dominate its wall-clock).
        max_elements = 16 * 2**20
        if settings.size is not None:
            max_elements = min(max_elements, max(int(settings.size), FULL_RANGE[0]))
    sizes = [s for s in FULL_RANGE if s <= max_elements]
    kernels = list(settings.kernels)
    series = {}
    for size in sizes:
        label = _size_label(size)
        values: List[float] = []
        sized = ExperimentContext(replace(settings, size=size))
        # Warm the memo through prefetch: under --overlap this drives the
        # size's whole (kernel x policy) set through one latency-hiding
        # event loop; otherwise it runs serially, byte-identical to the
        # bare loop below.
        sized.prefetch(
            [
                (kernel, policy)
                for kernel in kernels
                for policy in (SHMT_POLICY, BASELINE)
            ],
            references=False,
        )
        for kernel in kernels:
            values.append(sized.speedup(kernel, SHMT_POLICY))
        series[label] = values
    result = FigureResult(
        name="Figure 12: QAWS-TS speedup vs problem size",
        kernels=kernels,
        series=series,
    )
    result.compute_gmeans()
    return result


def _size_label(n: int) -> str:
    if n >= 2**20:
        return f"{n // 2**20}M"
    return f"{n // 2**10}K"
