"""Run every reproduced experiment and print the full evaluation.

``python -m repro.experiments.runner`` regenerates all of section 5:
Figures 2, 6, 7, 8, 9, 10, 11, 12 and Table 3, printing each as a table.
Pass ``--quick`` for a reduced-size sanity sweep.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.experiments import fig1, fig2, fig6, fig7, fig8, fig9, fig10, fig11, fig12, table3
from repro.experiments.common import ExperimentSettings


def run_all(
    settings: Optional[ExperimentSettings] = None,
    out=sys.stdout,
    metrics_path: Optional[str] = None,
) -> None:
    # One shared context so the GPU-baseline runs, workloads, and FP64
    # references are computed once across all figures.
    from dataclasses import replace

    from repro.experiments.common import ExperimentContext

    if metrics_path is not None:
        settings = settings or ExperimentSettings()
        settings.runtime_config = replace(settings.runtime_config, observe=True)
    shared = ExperimentContext(settings)
    experiments = [
        ("Figure 1", lambda: fig1.run(settings)),
        ("Figure 2", lambda: fig2.run(settings, ctx=shared)),
        ("Figure 6", lambda: fig6.run(settings, ctx=shared)),
        ("Figure 7", lambda: fig7.run(settings, ctx=shared)),
        ("Figure 8", lambda: fig8.run(settings, ctx=shared)),
        ("Figure 9", lambda: fig9.run(settings, ctx=shared)),
        ("Figure 10", lambda: fig10.run(settings, ctx=shared)),
        ("Figure 11", lambda: fig11.run(settings, ctx=shared)),
        ("Figure 12", lambda: fig12.run(settings)),
        ("Table 3", lambda: table3.run(settings, ctx=shared)),
    ]
    for name, thunk in experiments:
        start = time.time()
        result = thunk()
        elapsed = time.time() - start
        if isinstance(result, dict):
            for sub in result.values():
                print(sub.format_table(), file=out)
                print(file=out)
        else:
            print(result.format_table(), file=out)
        print(f"[{name} regenerated in {elapsed:.1f}s]\n", file=out)
    if metrics_path is not None:
        from repro.obs import to_records, write_records_jsonl

        records = []
        runs = 0
        for kernel, policy, report in shared.observed_runs():
            records.extend(
                to_records(
                    report.metrics,
                    meta={
                        "kernel": kernel,
                        "policy": policy,
                        "seed": shared.settings.seed,
                    },
                )
            )
            runs += 1
        write_records_jsonl(records, metrics_path)
        print(
            f"[metrics for {runs} runs ({len(records)} records) "
            f"written to {metrics_path}]",
            file=out,
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use 512x512 workloads for a fast sanity sweep",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="observe every cached run and write their metrics as one JSONL",
    )
    args = parser.parse_args()
    settings = ExperimentSettings(seed=args.seed)
    if args.quick:
        settings.size = 512 * 512
    run_all(settings, metrics_path=args.metrics)


if __name__ == "__main__":
    main()
