"""Run every reproduced experiment and print the full evaluation.

``python -m repro.experiments.runner`` regenerates all of section 5:
Figures 2, 6, 7, 8, 9, 10, 11, 12 and Table 3, printing each as a table.
Pass ``--quick`` for a reduced-size sanity sweep (the reduced size is
threaded through *every* experiment, including Figure 1's program frame
and Figure 12's size sweep, so the quick suite stays fast end to end).

Performance knobs (see docs/performance.md):

* ``--backend {serial,pool,process}`` / ``--jobs N`` select the compute
  backend executing HLOP numerics inside each run;
* ``--cache`` enables the process-wide content-addressed result cache, so
  the N policies of one sweep stop recomputing identical kernel blocks
  and references;
* ``--jobs`` also fans the (experiment, kernel, policy) grid out across
  worker threads before the figures are printed -- results are
  deterministic and identical to a serial sweep.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.experiments import fig1, fig2, fig6, fig7, fig8, fig9, fig10, fig11, fig12, table3
from repro.experiments.common import (
    BASELINE,
    FIG6_POLICIES,
    QUALITY_POLICIES,
    ExperimentContext,
    ExperimentSettings,
)


def prefetch_pairs(settings: ExperimentSettings) -> List[Tuple[str, str]]:
    """The (kernel, policy) grid the figure modules will ask the shared
    context for, in deterministic order."""
    kernels = list(settings.kernels)
    pairs: List[Tuple[str, str]] = []
    for kernel in kernels:
        pairs.append((kernel, BASELINE))
        pairs.append((kernel, "edge-tpu-only"))  # Figure 2
        for policy in FIG6_POLICIES:
            pairs.append((kernel, policy))
        for policy in QUALITY_POLICIES:  # Figures 7/8 (image kernels are
            pairs.append((kernel, policy))  # a subset of the full list)
    return list(dict.fromkeys(pairs))


def run_all(
    settings: Optional[ExperimentSettings] = None,
    out=sys.stdout,
    metrics_path: Optional[str] = None,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Regenerate the evaluation; returns wall-clock seconds per experiment.

    The timings dict (experiment name -> elapsed seconds, plus a
    ``"total"`` entry and, with ``jobs``, a ``"prefetch"`` entry) is what
    ``scripts/bench.py`` records.
    """
    # One shared context so the GPU-baseline runs, workloads, and FP64
    # references are computed once across all figures.
    if metrics_path is not None:
        settings = settings or ExperimentSettings()
        settings.runtime_config = replace(settings.runtime_config, observe=True)
    settings = settings or ExperimentSettings()
    shared = ExperimentContext(settings)
    timings: Dict[str, float] = {}
    suite_start = time.time()
    if (jobs and jobs > 1) or settings.runtime_config.overlap:
        start = time.time()
        shared.prefetch(prefetch_pairs(settings), jobs=jobs)
        timings["prefetch"] = time.time() - start
        print(f"[prefetched shared runs in {timings['prefetch']:.1f}s]\n", file=out)
    experiments = [
        ("Figure 1", lambda: fig1.run(settings)),
        ("Figure 2", lambda: fig2.run(settings, ctx=shared)),
        ("Figure 6", lambda: fig6.run(settings, ctx=shared)),
        ("Figure 7", lambda: fig7.run(settings, ctx=shared)),
        ("Figure 8", lambda: fig8.run(settings, ctx=shared)),
        ("Figure 9", lambda: fig9.run(settings, ctx=shared)),
        ("Figure 10", lambda: fig10.run(settings, ctx=shared)),
        ("Figure 11", lambda: fig11.run(settings, ctx=shared)),
        ("Figure 12", lambda: fig12.run(settings)),
        ("Table 3", lambda: table3.run(settings, ctx=shared)),
    ]
    for name, thunk in experiments:
        start = time.time()
        result = thunk()
        elapsed = time.time() - start
        timings[name] = elapsed
        if isinstance(result, dict):
            for sub in result.values():
                print(sub.format_table(), file=out)
                print(file=out)
        else:
            print(result.format_table(), file=out)
        print(f"[{name} regenerated in {elapsed:.1f}s]\n", file=out)
    timings["total"] = time.time() - suite_start
    if metrics_path is not None:
        from repro.obs import to_records, write_records_jsonl

        records = []
        runs = 0
        for kernel, policy, report in shared.observed_runs():
            records.extend(
                to_records(
                    report.metrics,
                    meta={
                        "kernel": kernel,
                        "policy": policy,
                        "seed": shared.settings.seed,
                    },
                )
            )
            runs += 1
        write_records_jsonl(records, metrics_path)
        print(
            f"[metrics for {runs} runs ({len(records)} records) "
            f"written to {metrics_path}]",
            file=out,
        )
    return timings


def apply_performance_args(
    settings: ExperimentSettings, args: argparse.Namespace
) -> ExperimentSettings:
    """Fold the shared --backend/--jobs/--cache flags into the settings."""
    settings.runtime_config = replace(
        settings.runtime_config,
        backend=args.backend,
        jobs=args.jobs,
        cache=args.cache,
        validate=args.validate,
        fuse=args.fuse,
        overlap=args.overlap,
    )
    return settings


def add_performance_args(parser: argparse.ArgumentParser) -> None:
    """The performance flags shared by the runner, the CLI, and bench."""
    parser.add_argument(
        "--backend",
        default="serial",
        choices=("serial", "pool", "process"),
        help="compute backend for HLOP numerics (default: serial)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker count: backend pool size and (kernel, policy) fan-out",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="enable the content-addressed cross-run result cache",
    )
    parser.add_argument(
        "--fuse",
        action="store_true",
        help="fuse compatible HLOP runs into single backend submissions "
        "and batch same-kernel work across concurrent calls "
        "(repro.exec.fuse); results stay bit-identical",
    )
    parser.add_argument(
        "--overlap",
        action="store_true",
        help="drive concurrent jobs through one wall-clock event loop "
        "(repro.core.overlap): transfers, backend compute, and "
        "aggregation of different jobs overlap, and with --fuse the "
        "fusion pass batches across jobs; per-job outputs and makespans "
        "stay bit-identical",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="run every batch under the runtime invariant checker "
        "(repro.verify); violations abort the run",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use 512x512 workloads for a fast sanity sweep",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="observe every cached run and write their metrics as one JSONL",
    )
    add_performance_args(parser)
    args = parser.parse_args()
    settings = ExperimentSettings(seed=args.seed)
    if args.quick:
        settings.size = 512 * 512
    apply_performance_args(settings, args)
    run_all(settings, metrics_path=args.metrics, jobs=args.jobs)


if __name__ == "__main__":
    main()
