"""Beyond the paper: accelerator-scaling study.

The paper's Figure 1 sketches five computing resources; its prototype has
three.  Because the runtime is policy- and platform-agnostic, we can ask
the natural follow-up: what does another accelerator buy?  This
experiment sweeps platform compositions --

* GPU only (the baseline platform),
* + Edge TPU (the paper's pair),
* + CPU (the paper's full prototype),
* + second Edge TPU,
* + FP16 DSP (the section 2.1 extension),

running work stealing on each and reporting speedup over the GPU
baseline.  The calibrated serial fractions (host overhead, non-parallel
transfer) bound the return on extra silicon, so the sweep shows the
Amdahl-style flattening a real deployment would hit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.runtime import SHMTRuntime
from repro.core.schedulers.base import make_scheduler
from repro.devices.cpu import CPUDevice
from repro.devices.dsp import DSPDevice
from repro.devices.edgetpu import EdgeTPUDevice
from repro.devices.gpu import GPUDevice
from repro.devices.platform import Platform
from repro.experiments.common import ExperimentContext, ExperimentSettings, FigureResult


def _platforms() -> Dict[str, Platform]:
    return {
        "GPU": Platform(devices=[GPUDevice()]),
        "GPU+TPU": Platform(devices=[GPUDevice(), EdgeTPUDevice()]),
        "GPU+TPU+CPU": Platform(
            devices=[CPUDevice(), GPUDevice(), EdgeTPUDevice()]
        ),
        "GPU+2TPU+CPU": Platform(
            devices=[CPUDevice(), GPUDevice(), EdgeTPUDevice("tpu0"), EdgeTPUDevice("tpu1")]
        ),
        "GPU+2TPU+CPU+DSP": Platform(
            devices=[
                CPUDevice(),
                GPUDevice(),
                EdgeTPUDevice("tpu0"),
                EdgeTPUDevice("tpu1"),
                DSPDevice(),
            ]
        ),
    }


def run(
    settings: Optional[ExperimentSettings] = None,
    ctx: Optional[ExperimentContext] = None,
) -> FigureResult:
    ctx = ctx or ExperimentContext(settings)
    kernels = list(ctx.settings.kernels)
    series: Dict[str, List[float]] = {}
    for label, platform in _platforms().items():
        speedups: List[float] = []
        for kernel in kernels:
            baseline = ctx.run(kernel, "gpu-baseline")
            runtime = SHMTRuntime(
                platform,
                make_scheduler("work-stealing"),
                config=ctx.settings.runtime_config,
            )
            report = runtime.execute(ctx.call(kernel))
            speedups.append(report.speedup_over(baseline))
        series[label] = speedups
    result = FigureResult(
        name="Accelerator scaling: work-stealing speedup by platform",
        kernels=kernels,
        series=series,
    )
    result.compute_gmeans()
    return result
