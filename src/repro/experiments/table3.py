"""Table 3: communication overhead.

The paper reports the fraction of time computing resources spend waiting
on data exchange: about or below 1% for every benchmark (GMEAN 0.71%),
thanks to double buffering, long-enough compute per HLOP, and
oversubscription.  We measure the same quantity from the simulated
timeline: per-device transfer-wait seconds over total engaged time.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentContext, ExperimentSettings, FigureResult

#: The paper's reported overheads, for side-by-side printing.
from repro.paperdata import TABLE3_COMM_OVERHEAD as PAPER_OVERHEAD_PERCENT

SHMT_POLICY = "QAWS-TS"


def run(
    settings: Optional[ExperimentSettings] = None,
    ctx: Optional[ExperimentContext] = None,
) -> FigureResult:
    ctx = ctx or ExperimentContext(settings)
    kernels = list(ctx.settings.kernels)
    measured = []
    paper = []
    for kernel in kernels:
        report = ctx.run(kernel, SHMT_POLICY)
        measured.append(100.0 * report.communication_overhead)
        paper.append(PAPER_OVERHEAD_PERCENT.get(kernel, float("nan")))
    result = FigureResult(
        name="Table 3: communication overhead (%)",
        kernels=kernels,
        series={"measured": measured, "paper": paper},
    )
    result.compute_gmeans()
    return result
