"""Figure 7: result quality (MAPE) of every quality policy.

Reproduces the per-kernel Mean Absolute Percentage Error for: the
Edge-TPU-only offload (the quality floor SHMT must avoid), IRA-sampling,
quality-blind work stealing, the six QAWS variants, and the oracle
assignment.  The paper's shape: TPU-only is by far the worst (5.15% GMEAN),
work stealing in between (2.85%), every QAWS variant below 2% and close to
the oracle (1.77%).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    QUALITY_POLICIES,
    ExperimentContext,
    ExperimentSettings,
    FigureResult,
)
from repro.metrics.mape import MAPEReference, mape_percent


def run(
    settings: Optional[ExperimentSettings] = None,
    ctx: Optional[ExperimentContext] = None,
) -> FigureResult:
    ctx = ctx or ExperimentContext(settings)
    kernels = list(ctx.settings.kernels)
    # One shared FP64 reference serves every policy of the sweep, so the
    # reference-side MAPE fields are precomputed once per kernel.
    references = {kernel: MAPEReference(ctx.reference(kernel)) for kernel in kernels}
    series = {}
    for policy in QUALITY_POLICIES:
        values = []
        for kernel in kernels:
            report = ctx.run(kernel, policy)
            values.append(mape_percent(references[kernel], report.output))
        series[policy] = values
    result = FigureResult(
        name="Figure 7: MAPE (%) vs FP64 reference",
        kernels=kernels,
        series=series,
    )
    result.compute_gmeans()
    return result
