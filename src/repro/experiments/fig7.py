"""Figure 7: result quality (MAPE) of every quality policy.

Reproduces the per-kernel Mean Absolute Percentage Error for: the
Edge-TPU-only offload (the quality floor SHMT must avoid), IRA-sampling,
quality-blind work stealing, the six QAWS variants, and the oracle
assignment.  The paper's shape: TPU-only is by far the worst (5.15% GMEAN),
work stealing in between (2.85%), every QAWS variant below 2% and close to
the oracle (1.77%).
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.experiments.common import (
    QUALITY_POLICIES,
    ExperimentContext,
    ExperimentSettings,
    FigureResult,
)
from repro.metrics.mape import MAPEReference, mape_percent


def run(
    settings: Optional[ExperimentSettings] = None,
    ctx: Optional[ExperimentContext] = None,
) -> FigureResult:
    ctx = ctx or ExperimentContext(settings)
    kernels = list(ctx.settings.kernels)
    # One shared FP64 reference serves every policy of the sweep, so the
    # reference-side MAPE fields are precomputed once per kernel.
    references = {kernel: MAPEReference(ctx.reference(kernel)) for kernel in kernels}
    series = {}
    # Policies that route identically produce byte-identical outputs; with
    # result caching enabled, score each distinct output once (hash ~1ms vs
    # rescore ~3ms).  Cache-off runs score everything independently -- the
    # memo is part of the caching feature set, not the baseline.
    dedup = ctx.settings.runtime_config.cache
    scored: dict = {}
    for policy in QUALITY_POLICIES:
        values = []
        for kernel in kernels:
            report = ctx.run(kernel, policy)
            score = None
            if dedup:
                output = np.ascontiguousarray(report.output)
                key = (kernel, hashlib.blake2b(output.tobytes(), digest_size=16).digest())
                score = scored.get(key)
                if score is None:
                    score = scored[key] = mape_percent(references[kernel], output)
            if score is None:
                score = mape_percent(references[kernel], report.output)
            values.append(score)
        series[policy] = values
    result = FigureResult(
        name="Figure 7: MAPE (%) vs FP64 reference",
        kernels=kernels,
        series=series,
    )
    result.compute_gmeans()
    return result
