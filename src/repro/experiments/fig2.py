"""Figure 2: the theoretical potential of SHMT.

The paper's Figure 2 compares, per kernel, (a) the Edge TPU NPU
implementation's speed relative to the GPU, (b) the theoretical gain of the
conventional approach (delegate the whole kernel to the faster device:
``max(1, r)``), and (c) the theoretical gain of SHMT (every device working
concurrently with zero coordination overhead).

Our *measured* Edge-TPU-relative speed comes from actually running the
kernel on the simulated TPU-only and GPU-only platforms -- validating the
whole timing stack -- and lands on the calibrated Figure 2 ratio modulo
launch/transfer overhead.  The SHMT bound uses the platform's aggregate
throughput ``1 + r + c``.  (The paper's printed SHMT bars equal ``r + 2``,
i.e. they credit a full extra GPU-equivalent of auxiliary throughput; our
platform models the auxiliary CPU at c = 0.5, so our ideal bound is
``r + 1.5``.  Both bounds tell the same story: every kernel gains from
simultaneous execution, and the ranking across kernels is identical.)
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentContext, ExperimentSettings, FigureResult
from repro.devices.perf_model import CALIBRATION, PAPER_TARGETS


def run(
    settings: Optional[ExperimentSettings] = None,
    ctx: Optional[ExperimentContext] = None,
) -> FigureResult:
    ctx = ctx or ExperimentContext(settings)
    kernels = list(ctx.settings.kernels)
    measured_tpu = []
    conventional = []
    shmt_ideal = []
    paper_tpu = []
    for kernel in kernels:
        baseline = ctx.run(kernel, "gpu-baseline")
        tpu_only = ctx.run(kernel, "edge-tpu-only")
        ratio = baseline.makespan / tpu_only.makespan
        measured_tpu.append(ratio)
        calibration = CALIBRATION[kernel]
        conventional.append(max(1.0, ratio))
        shmt_ideal.append(
            ratio + 1.0 + calibration.cpu_speedup
        )
        paper_tpu.append(PAPER_TARGETS[kernel]["tpu"])
    result = FigureResult(
        name="Figure 2: theoretical potential (speedup over GPU baseline)",
        kernels=kernels,
        series={
            "edge TPU (measured)": measured_tpu,
            "edge TPU (paper)": paper_tpu,
            "conventional best": conventional,
            "SHMT theoretical": shmt_ideal,
        },
    )
    result.compute_gmeans()
    return result
