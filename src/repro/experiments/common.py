"""Shared machinery for reproducing the paper's figures and tables.

Every ``figN.py`` module builds on :func:`run_policy`: it constructs the
right platform for a policy (GPU-only for the baseline and software
pipelining, TPU-only for the "edge TPU" reference, the full Jetson-Nano
analogue otherwise), executes the kernel's workload, and caches results so
one experiment sweep never re-runs an identical (kernel, policy, size,
seed) combination.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.overlap import OverlapDriver, OverlapJob
from repro.core.result import ExecutionReport
from repro.core.runtime import RuntimeConfig, SHMTRuntime
from repro.core.schedulers.base import make_scheduler
from repro.core.vop import VOPCall
from repro.devices.perf_model import benchmark_names
from repro.devices.platform import (
    Platform,
    gpu_only_platform,
    gpu_tpu_platform,
    jetson_nano_platform,
)
from repro.devices.edgetpu import EdgeTPUDevice
from repro.exec import fingerprint_array, fingerprint_value, make_backend, result_cache
from repro.metrics.stats import geometric_mean
from repro.workloads.generator import Size, generate

#: The Figure 6 policy lineup, in the paper's presentation order.
FIG6_POLICIES = (
    "IRA-sampling",
    "sw-pipelining",
    "even-distribution",
    "work-stealing",
    "QAWS-TS",
    "QAWS-TU",
    "QAWS-TR",
    "QAWS-LS",
    "QAWS-LU",
    "QAWS-LR",
)

#: Figure 7/8 policy lineup (quality figures).
QUALITY_POLICIES = (
    "edge-tpu-only",
    "IRA-sampling",
    "work-stealing",
    "QAWS-TS",
    "QAWS-TU",
    "QAWS-TR",
    "QAWS-LS",
    "QAWS-LU",
    "QAWS-LR",
    "oracle",
)

BASELINE = "gpu-baseline"

#: Jobs the overlapped prefetch keeps in flight at once.  The prefetch
#: grid is kernel-major, so a window this size holds one kernel's whole
#: policy lineup -- the same-kernel runs whose HLOPs the fusion pass can
#: batch across jobs (their shapes and contexts match).
OVERLAP_WINDOW = 16


def platform_for(policy: str) -> Platform:
    """The hardware a policy runs on (mirrors the paper's setups)."""
    if policy in ("gpu-baseline", "sw-pipelining"):
        return gpu_only_platform()
    if policy == "edge-tpu-only":
        return Platform(devices=[EdgeTPUDevice()])
    if policy == "even-distribution":
        return gpu_tpu_platform()
    return jetson_nano_platform()


@dataclass
class ExperimentSettings:
    """Knobs shared by every experiment run."""

    size: Optional[Size] = None
    seed: int = 0
    kernels: Sequence[str] = field(default_factory=lambda: list(benchmark_names()))
    runtime_config: RuntimeConfig = field(default_factory=RuntimeConfig)


class ExperimentContext:
    """Caches workloads, references, and policy runs for one settings set.

    Thread-safe: :meth:`run` and :meth:`reference` may be called from the
    runner's ``--jobs`` fan-out workers; identical in-flight requests are
    deduplicated so each (kernel, policy) executes exactly once.  Runs are
    deterministic (each builds its own seeded RNG), so results are
    independent of worker interleaving.
    """

    def __init__(self, settings: Optional[ExperimentSettings] = None) -> None:
        self.settings = settings or ExperimentSettings()
        self._calls: Dict[str, VOPCall] = {}
        self._references: Dict[str, np.ndarray] = {}
        self._runs: Dict[Tuple[str, str], ExecutionReport] = {}
        self._lock = threading.Lock()
        self._inflight: Dict[Tuple[str, str], threading.Event] = {}

    def call(self, kernel: str) -> VOPCall:
        with self._lock:
            call = self._calls.get(kernel)
        if call is None:
            call = generate(kernel, size=self.settings.size, seed=self.settings.seed)
            with self._lock:
                call = self._calls.setdefault(kernel, call)
        return call

    def reference(self, kernel: str) -> np.ndarray:
        """FP64 full-input reference output for quality metrics.

        When the settings' runtime config enables the result cache, the
        reference also goes through the process-wide content-addressed
        cache, so every context (each figure module, each bench phase)
        shares one computation per distinct input instead of one per
        context.
        """
        with self._lock:
            reference = self._references.get(kernel)
        if reference is None:
            call = self.call(kernel)
            reference = self._cached_reference(call)
            with self._lock:
                reference = self._references.setdefault(kernel, reference)
        return reference

    def _cached_reference(self, call: VOPCall) -> np.ndarray:
        spec = call.spec
        host_context = call.resolve_context()
        key = None
        if self.settings.runtime_config.cache:
            ctx_id = fingerprint_value(host_context)
            if ctx_id is not None:
                data_fp = call.data_fingerprint() or fingerprint_array(call.data)
                key = "|".join(["reference", spec.name, ctx_id, data_fp])
            cache = result_cache()
            hit = cache.get(key)
            if hit is not None:
                return hit
            value = np.asarray(
                spec.reference(call.data.astype(np.float64), host_context)
            )
            return cache.put(key, value)
        return np.asarray(
            spec.reference(call.data.astype(np.float64), host_context)
        )

    def run(self, kernel: str, policy: str) -> ExecutionReport:
        key = (kernel, policy)
        while True:
            with self._lock:
                report = self._runs.get(key)
                if report is not None:
                    return report
                pending = self._inflight.get(key)
                if pending is None:
                    pending = threading.Event()
                    self._inflight[key] = pending
                    break
            # Another worker is executing this exact run; wait and re-check
            # (re-checking covers the owner failing without a result).
            pending.wait()
        try:
            runtime = SHMTRuntime(
                platform_for(policy),
                make_scheduler(policy),
                config=self.settings.runtime_config,
            )
            report = runtime.execute(self.call(kernel))
            with self._lock:
                self._runs[key] = report
            return report
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            pending.set()

    def prefetch(
        self,
        pairs: Iterable[Tuple[str, str]],
        jobs: Optional[int] = None,
        references: bool = True,
    ) -> None:
        """Execute ``(kernel, policy)`` runs concurrently on worker threads.

        The figure modules then read every result from the context's memo
        -- this is the runner's ``--jobs`` fan-out across (experiment,
        kernel, policy).  With ``jobs`` <= 1 the pairs run serially, which
        is byte-identical to not prefetching at all.
        """
        todo = [pair for pair in dict.fromkeys(pairs) if pair not in self._runs]
        kernels = list(dict.fromkeys(kernel for kernel, _ in todo))
        if self.settings.runtime_config.overlap and todo:
            # Latency-hiding path: one wall-clock driver interleaves the
            # runs' event loops (repro.core.overlap) instead of fanning
            # out threads.  Reports are bit-identical to sequential runs,
            # so the memo the figure modules read is unchanged.
            self._prefetch_overlapped(todo, kernels, references)
            return
        if not jobs or jobs <= 1:
            for kernel, policy in todo:
                self.run(kernel, policy)
            if references:
                for kernel in kernels:
                    self.reference(kernel)
            return
        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="repro-experiments"
        ) as pool:
            futures = [pool.submit(self.run, kernel, policy) for kernel, policy in todo]
            if references:
                futures.extend(pool.submit(self.reference, kernel) for kernel in kernels)
            for future in futures:
                future.result()

    def _prefetch_overlapped(
        self, todo: List[Tuple[str, str]], kernels: List[str], references: bool
    ) -> None:
        """Drive ``todo`` through the overlap driver on a shared backend.

        Every run keeps its own platform, scheduler, and virtual clock
        (exactly what :meth:`run` would build); only the compute backend
        is shared, so fused submissions from concurrent jobs batch
        together.  ``todo`` arrives kernel-major, and the driver admits
        jobs in order, so the in-flight window is dominated by one
        kernel's policies -- the cross-job batches with matching shapes.
        """
        config = self.settings.runtime_config
        shared_backend = make_backend(
            config.backend,
            jobs=config.jobs,
            cache=result_cache() if config.cache else None,
            validate=config.validate,
            fuse=config.fuse,
        )

        def job_for(kernel: str, policy: str) -> OverlapJob:
            def prepare():
                runtime = SHMTRuntime(
                    platform_for(policy),
                    make_scheduler(policy),
                    config=config,
                    backend=shared_backend,
                )
                return runtime.prepare_batch([self.call(kernel)])

            def on_done(job: OverlapJob) -> None:
                if job.error is None:
                    with self._lock:
                        self._runs[(kernel, policy)] = job.report.reports[0]

            return OverlapJob(key=(kernel, policy), prepare=prepare, on_done=on_done)

        jobs = [job_for(kernel, policy) for kernel, policy in todo]
        OverlapDriver(window=OVERLAP_WINDOW).drive(jobs)
        for job in jobs:
            if job.error is not None:
                raise job.error
        if references:
            for kernel in kernels:
                self.reference(kernel)

    def speedup(self, kernel: str, policy: str) -> float:
        """End-to-end speedup over the GPU baseline (the paper's y-axis)."""
        return self.run(kernel, policy).speedup_over(self.run(kernel, BASELINE))

    def observed_runs(self):
        """Yield ``(kernel, policy, report)`` for cached runs with metrics.

        Deterministic order (sorted by kernel then policy); empty unless
        the settings' runtime config has ``observe=True``.
        """
        for kernel, policy in sorted(self._runs):
            report = self._runs[(kernel, policy)]
            if report.metrics is not None:
                yield kernel, policy, report


@dataclass
class FigureResult:
    """One reproduced figure/table: named rows of per-kernel values."""

    name: str
    kernels: List[str]
    #: row label -> per-kernel values (same order as ``kernels``).
    series: "Dict[str, List[float]]"
    #: row label -> cross-kernel aggregate (GMEAN unless noted).
    aggregates: Dict[str, float] = field(default_factory=dict)

    def value(self, row: str, kernel: str) -> float:
        return self.series[row][self.kernels.index(kernel)]

    def compute_gmeans(self) -> None:
        for row, values in self.series.items():
            positives = [v for v in values if v > 0]
            if positives:
                self.aggregates[row] = geometric_mean(positives)

    def format_table(self, unit: str = "", width: int = 9) -> str:
        header = f"{'policy':18s}" + "".join(f"{k[:width - 1]:>{width}s}" for k in self.kernels)
        header += f"{'GMEAN':>{width}s}"
        lines = [f"== {self.name} {unit}".rstrip(), header]
        for row, values in self.series.items():
            cells = "".join(f"{v:>{width}.3f}" for v in values)
            aggregate = self.aggregates.get(row)
            tail = f"{aggregate:>{width}.3f}" if aggregate is not None else " " * width
            lines.append(f"{row:18s}{cells}{tail}")
        return "\n".join(lines)
