"""Shared machinery for reproducing the paper's figures and tables.

Every ``figN.py`` module builds on :func:`run_policy`: it constructs the
right platform for a policy (GPU-only for the baseline and software
pipelining, TPU-only for the "edge TPU" reference, the full Jetson-Nano
analogue otherwise), executes the kernel's workload, and caches results so
one experiment sweep never re-runs an identical (kernel, policy, size,
seed) combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import ExecutionReport
from repro.core.runtime import RuntimeConfig, SHMTRuntime
from repro.core.schedulers.base import make_scheduler
from repro.core.vop import VOPCall
from repro.devices.perf_model import benchmark_names
from repro.devices.platform import (
    Platform,
    gpu_only_platform,
    gpu_tpu_platform,
    jetson_nano_platform,
)
from repro.devices.edgetpu import EdgeTPUDevice
from repro.metrics.stats import geometric_mean
from repro.workloads.generator import Size, generate

#: The Figure 6 policy lineup, in the paper's presentation order.
FIG6_POLICIES = (
    "IRA-sampling",
    "sw-pipelining",
    "even-distribution",
    "work-stealing",
    "QAWS-TS",
    "QAWS-TU",
    "QAWS-TR",
    "QAWS-LS",
    "QAWS-LU",
    "QAWS-LR",
)

#: Figure 7/8 policy lineup (quality figures).
QUALITY_POLICIES = (
    "edge-tpu-only",
    "IRA-sampling",
    "work-stealing",
    "QAWS-TS",
    "QAWS-TU",
    "QAWS-TR",
    "QAWS-LS",
    "QAWS-LU",
    "QAWS-LR",
    "oracle",
)

BASELINE = "gpu-baseline"


def platform_for(policy: str) -> Platform:
    """The hardware a policy runs on (mirrors the paper's setups)."""
    if policy in ("gpu-baseline", "sw-pipelining"):
        return gpu_only_platform()
    if policy == "edge-tpu-only":
        return Platform(devices=[EdgeTPUDevice()])
    if policy == "even-distribution":
        return gpu_tpu_platform()
    return jetson_nano_platform()


@dataclass
class ExperimentSettings:
    """Knobs shared by every experiment run."""

    size: Optional[Size] = None
    seed: int = 0
    kernels: Sequence[str] = field(default_factory=lambda: list(benchmark_names()))
    runtime_config: RuntimeConfig = field(default_factory=RuntimeConfig)


class ExperimentContext:
    """Caches workloads, references, and policy runs for one settings set."""

    def __init__(self, settings: Optional[ExperimentSettings] = None) -> None:
        self.settings = settings or ExperimentSettings()
        self._calls: Dict[str, VOPCall] = {}
        self._references: Dict[str, np.ndarray] = {}
        self._runs: Dict[Tuple[str, str], ExecutionReport] = {}

    def call(self, kernel: str) -> VOPCall:
        if kernel not in self._calls:
            self._calls[kernel] = generate(
                kernel, size=self.settings.size, seed=self.settings.seed
            )
        return self._calls[kernel]

    def reference(self, kernel: str) -> np.ndarray:
        """FP64 full-input reference output for quality metrics."""
        if kernel not in self._references:
            call = self.call(kernel)
            spec = call.spec
            self._references[kernel] = np.asarray(
                spec.reference(call.data.astype(np.float64), call.resolve_context())
            )
        return self._references[kernel]

    def run(self, kernel: str, policy: str) -> ExecutionReport:
        key = (kernel, policy)
        if key not in self._runs:
            runtime = SHMTRuntime(
                platform_for(policy),
                make_scheduler(policy),
                config=self.settings.runtime_config,
            )
            self._runs[key] = runtime.execute(self.call(kernel))
        return self._runs[key]

    def speedup(self, kernel: str, policy: str) -> float:
        """End-to-end speedup over the GPU baseline (the paper's y-axis)."""
        return self.run(kernel, policy).speedup_over(self.run(kernel, BASELINE))

    def observed_runs(self):
        """Yield ``(kernel, policy, report)`` for cached runs with metrics.

        Deterministic order (sorted by kernel then policy); empty unless
        the settings' runtime config has ``observe=True``.
        """
        for kernel, policy in sorted(self._runs):
            report = self._runs[(kernel, policy)]
            if report.metrics is not None:
                yield kernel, policy, report


@dataclass
class FigureResult:
    """One reproduced figure/table: named rows of per-kernel values."""

    name: str
    kernels: List[str]
    #: row label -> per-kernel values (same order as ``kernels``).
    series: "Dict[str, List[float]]"
    #: row label -> cross-kernel aggregate (GMEAN unless noted).
    aggregates: Dict[str, float] = field(default_factory=dict)

    def value(self, row: str, kernel: str) -> float:
        return self.series[row][self.kernels.index(kernel)]

    def compute_gmeans(self) -> None:
        for row, values in self.series.items():
            positives = [v for v in values if v > 0]
            if positives:
                self.aggregates[row] = geometric_mean(positives)

    def format_table(self, unit: str = "", width: int = 9) -> str:
        header = f"{'policy':18s}" + "".join(f"{k[:width - 1]:>{width}s}" for k in self.kernels)
        header += f"{'GMEAN':>{width}s}"
        lines = [f"== {self.name} {unit}".rstrip(), header]
        for row, values in self.series.items():
            cells = "".join(f"{v:>{width}.3f}" for v in values)
            aggregate = self.aggregates.get(row)
            tail = f"{aggregate:>{width}.3f}" if aggregate is not None else " " * width
            lines.append(f"{row:18s}{cells}{tail}")
        return "\n".join(lines)
