"""Figure 11: memory footprint of SHMT relative to the GPU baseline.

The paper measures each process's virtual-memory footprint and finds SHMT
near parity on average (GMEAN 0.986), *below* 1.0 for Sobel (0.714) and
SRAD (0.750): Edge TPU on-chip buffers replace the intermediate storage
those kernels' GPU implementations materialize in host memory.

We apply the accounting model of :mod:`repro.devices.memory` with each
kernel's *actual* simulated work shares under QAWS-TS, so the ratio
responds to scheduling exactly as the measurement would.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.devices.memory import footprint_report
from repro.devices.perf_model import CALIBRATION
from repro.experiments.common import ExperimentContext, ExperimentSettings, FigureResult

SHMT_POLICY = "QAWS-TS"


def run(
    settings: Optional[ExperimentSettings] = None,
    ctx: Optional[ExperimentContext] = None,
) -> FigureResult:
    ctx = ctx or ExperimentContext(settings)
    kernels = list(ctx.settings.kernels)
    ratios = []
    for kernel in kernels:
        shmt = ctx.run(kernel, SHMT_POLICY)
        call = ctx.call(kernel)
        input_bytes = float(call.data.nbytes)
        output_bytes = float(np.asarray(shmt.output).nbytes)
        report = footprint_report(
            CALIBRATION[kernel], input_bytes, output_bytes, shmt.work_shares
        )
        ratios.append(report.ratio)
    result = FigureResult(
        name="Figure 11: memory footprint ratio (SHMT / GPU baseline)",
        kernels=kernels,
        series={"footprint ratio": ratios},
    )
    result.compute_gmeans()
    return result
