"""Figure 8: SSIM for the six image-producing kernels.

MAPE misbehaves on near-zero outputs (edge maps), so the paper adds SSIM
for DCT8x8, DWT, Laplacian, Mean Filter, Sobel, and SRAD.  Its shape: the
TPU-only run dips to ~0.89-0.92 on the edge detectors, work stealing
recovers to ~0.975, and every QAWS variant stays above ~0.98, close to the
oracle's 0.9957.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Optional

import numpy as np

from repro.experiments.common import (
    QUALITY_POLICIES,
    ExperimentContext,
    ExperimentSettings,
    FigureResult,
)
from repro.metrics.ssim import SSIMReference, ssim
from repro.workloads.suite import IMAGE_KERNELS


def run(
    settings: Optional[ExperimentSettings] = None,
    ctx: Optional[ExperimentContext] = None,
) -> FigureResult:
    if ctx is None:
        if settings is None:
            settings = ExperimentSettings()
        settings = replace(
            settings, kernels=[k for k in settings.kernels if k in IMAGE_KERNELS]
        )
        ctx = ExperimentContext(settings)
    kernels = [k for k in ctx.settings.kernels if k in IMAGE_KERNELS]
    # One shared FP64 reference serves every policy of the sweep, so the
    # reference-side Gaussian fields are precomputed once per kernel.
    # (Scoring stays one image at a time: 2D slices fit the cache, while
    # stacking the whole sweep through ssim_many trades scipy call count
    # for far worse locality on small machines.)
    references = {kernel: SSIMReference(ctx.reference(kernel)) for kernel in kernels}
    series = {}
    # Policies with low NPU traffic often produce byte-identical outputs
    # (e.g. everything routed to exact devices); with result caching
    # enabled, score each distinct output once -- hashing costs ~1ms where
    # a rescore costs ~20ms.  Cache-off runs score everything
    # independently; the memo is part of the caching feature set.
    dedup = ctx.settings.runtime_config.cache
    scored: dict = {}
    for policy in QUALITY_POLICIES:
        values = []
        for kernel in kernels:
            report = ctx.run(kernel, policy)
            score = None
            if dedup:
                output = np.ascontiguousarray(report.output)
                key = (kernel, hashlib.blake2b(output.tobytes(), digest_size=16).digest())
                score = scored.get(key)
                if score is None:
                    score = scored[key] = ssim(references[kernel], output)
            if score is None:
                score = ssim(references[kernel], report.output)
            values.append(score)
        series[policy] = values
    result = FigureResult(
        name="Figure 8: SSIM vs FP64 reference (image kernels)",
        kernels=kernels,
        series=series,
    )
    result.compute_gmeans()
    return result
