"""Markdown/CSV export of experiment results.

Converts :class:`~repro.experiments.common.FigureResult` objects into
GitHub-flavoured markdown tables and CSV rows so regenerated evaluations
can be pasted into docs (EXPERIMENTS.md was seeded this way) or consumed
by external tooling.
"""

from __future__ import annotations

import io
from typing import Iterable, Optional

from repro.experiments.common import FigureResult


def to_markdown(result: FigureResult, float_format: str = "{:.3f}") -> str:
    """Render a FigureResult as a markdown table (kernels as columns)."""
    header = ["policy", *result.kernels, "GMEAN"]
    lines = [
        "### " + result.name,
        "",
        "| " + " | ".join(header) + " |",
        "|" + "|".join(["---"] * len(header)) + "|",
    ]
    for row, values in result.series.items():
        cells = [float_format.format(v) for v in values]
        aggregate = result.aggregates.get(row)
        tail = float_format.format(aggregate) if aggregate is not None else ""
        lines.append("| " + " | ".join([row, *cells, tail]) + " |")
    return "\n".join(lines)


def to_csv(result: FigureResult) -> str:
    """Render a FigureResult as CSV (one row per policy)."""
    buffer = io.StringIO()
    buffer.write("policy," + ",".join(result.kernels) + ",gmean\n")
    for row, values in result.series.items():
        aggregate = result.aggregates.get(row, "")
        cells = ",".join(repr(v) for v in values)
        buffer.write(f"{row},{cells},{aggregate}\n")
    return buffer.getvalue()


def write_markdown_report(
    results: Iterable[FigureResult],
    path: str,
    title: Optional[str] = None,
) -> None:
    """Write several figures into one markdown file."""
    sections = [to_markdown(result) for result in results]
    body = "\n\n".join(sections)
    if title:
        body = f"# {title}\n\n{body}"
    with open(path, "w") as handle:
        handle.write(body + "\n")
