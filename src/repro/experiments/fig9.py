"""Figure 9: QAWS quality and speedup vs. sampling rate.

The paper sweeps QAWS-TS's sampling rate over powers of two and finds
(a) speedup is essentially flat (sampling is cheap at every tested rate)
and (b) MAPE decreases monotonically until the rate reaches the sweet spot
(2^-15 on their 2048^2-per-partition inputs), then plateaus -- denser
sampling buys nothing.

Our partitions are 64x smaller than the paper's (256^2 vs 2048^2; see
``core.sampling.DEFAULT_SAMPLING_RATE``), so the equivalent sweep covers
2^-15 .. 2^-8: the same samples-per-partition range, hence the same curve
shape on a shifted axis.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.overlap import OverlapDriver, OverlapJob
from repro.core.runtime import ExecutionReport, SHMTRuntime
from repro.core.schedulers.qaws import QAWS
from repro.exec.backends import make_backend
from repro.exec.cache import result_cache
from repro.experiments.common import (
    OVERLAP_WINDOW,
    ExperimentContext,
    ExperimentSettings,
    FigureResult,
    platform_for,
)
from repro.metrics.mape import MAPEReference, mape_percent

DEFAULT_EXPONENTS = (-15, -14, -13, -12, -11, -10, -9, -8)


def _sweep_scheduler(exponent: int) -> QAWS:
    return QAWS(policy="topk", sampler="striding", sampling_rate=2.0**exponent)


def _prefetch_sweep(
    ctx: ExperimentContext,
    exponents: Sequence[int],
    kernels: Sequence[str],
) -> Dict[Tuple[int, str], ExecutionReport]:
    """Run the whole (exponent, kernel) sweep through the overlap driver.

    QAWS schedulers are configuration-only (samplers draw from the run
    context's rng), so giving each overlapped job a fresh instance is
    bit-identical to the sequential loop's shared one.  Sharing a single
    compute backend lets fused submissions batch across sweep points.
    """
    config = ctx.settings.runtime_config
    shared_backend = make_backend(
        config.backend,
        jobs=config.jobs,
        cache=result_cache() if config.cache else None,
        validate=config.validate,
        fuse=config.fuse,
    )
    reports: Dict[Tuple[int, str], ExecutionReport] = {}

    def job_for(exponent: int, kernel: str) -> OverlapJob:
        def prepare():
            runtime = SHMTRuntime(
                platform_for("QAWS-TS"),
                _sweep_scheduler(exponent),
                config=config,
                backend=shared_backend,
            )
            return runtime.prepare_batch([ctx.call(kernel)])

        def on_done(job: OverlapJob) -> None:
            if job.error is None:
                reports[(exponent, kernel)] = job.report.reports[0]

        return OverlapJob(key=(exponent, kernel), prepare=prepare, on_done=on_done)

    jobs = [
        job_for(exponent, kernel) for exponent in exponents for kernel in kernels
    ]
    OverlapDriver(window=OVERLAP_WINDOW).drive(jobs)
    for job in jobs:
        if job.error is not None:
            raise job.error
    return reports


def run(
    settings: Optional[ExperimentSettings] = None,
    exponents: Sequence[int] = DEFAULT_EXPONENTS,
    ctx: Optional[ExperimentContext] = None,
) -> Dict[str, FigureResult]:
    """Returns {"speedup": ..., "mape": ...}, rows keyed by sampling rate."""
    ctx = ctx or ExperimentContext(settings)
    kernels = list(ctx.settings.kernels)
    speedup_series: Dict[str, List[float]] = {}
    mape_series: Dict[str, List[float]] = {}
    # The reference is fixed across the sampling-rate sweep; precompute
    # its MAPE fields once per kernel.
    references = {kernel: MAPEReference(ctx.reference(kernel)) for kernel in kernels}
    overlapped: Dict[Tuple[int, str], ExecutionReport] = {}
    if ctx.settings.runtime_config.overlap:
        overlapped = _prefetch_sweep(ctx, exponents, kernels)
    # Adjacent sampling rates often yield identical schedules and hence
    # byte-identical outputs; with result caching enabled, score each
    # distinct output once.  Cache-off runs score everything independently.
    dedup = ctx.settings.runtime_config.cache
    scored: Dict[Tuple[str, bytes], float] = {}
    for exponent in exponents:
        scheduler = _sweep_scheduler(exponent)
        label = f"2^{exponent}"
        speedups: List[float] = []
        mapes: List[float] = []
        for kernel in kernels:
            report = overlapped.get((exponent, kernel))
            if report is None:
                runtime = SHMTRuntime(
                    platform_for("QAWS-TS"),
                    scheduler,
                    config=ctx.settings.runtime_config,
                )
                report = runtime.execute(ctx.call(kernel))
            baseline = ctx.run(kernel, "gpu-baseline")
            speedups.append(report.speedup_over(baseline))
            score = None
            if dedup:
                output = np.ascontiguousarray(report.output)
                key = (kernel, hashlib.blake2b(output.tobytes(), digest_size=16).digest())
                score = scored.get(key)
                if score is None:
                    score = scored[key] = mape_percent(references[kernel], output)
            if score is None:
                score = mape_percent(references[kernel], report.output)
            mapes.append(score)
        speedup_series[label] = speedups
        mape_series[label] = mapes
    speedup_result = FigureResult(
        name="Figure 9(b): QAWS-TS speedup vs sampling rate",
        kernels=kernels,
        series=speedup_series,
    )
    mape_result = FigureResult(
        name="Figure 9(a): QAWS-TS MAPE (%) vs sampling rate",
        kernels=kernels,
        series=mape_series,
    )
    speedup_result.compute_gmeans()
    mape_result.compute_gmeans()
    return {"speedup": speedup_result, "mape": mape_result}
