"""Figure 9: QAWS quality and speedup vs. sampling rate.

The paper sweeps QAWS-TS's sampling rate over powers of two and finds
(a) speedup is essentially flat (sampling is cheap at every tested rate)
and (b) MAPE decreases monotonically until the rate reaches the sweet spot
(2^-15 on their 2048^2-per-partition inputs), then plateaus -- denser
sampling buys nothing.

Our partitions are 64x smaller than the paper's (256^2 vs 2048^2; see
``core.sampling.DEFAULT_SAMPLING_RATE``), so the equivalent sweep covers
2^-15 .. 2^-8: the same samples-per-partition range, hence the same curve
shape on a shifted axis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.runtime import SHMTRuntime
from repro.core.schedulers.qaws import QAWS
from repro.experiments.common import (
    ExperimentContext,
    ExperimentSettings,
    FigureResult,
    platform_for,
)
from repro.metrics.mape import MAPEReference, mape_percent

DEFAULT_EXPONENTS = (-15, -14, -13, -12, -11, -10, -9, -8)


def run(
    settings: Optional[ExperimentSettings] = None,
    exponents: Sequence[int] = DEFAULT_EXPONENTS,
    ctx: Optional[ExperimentContext] = None,
) -> Dict[str, FigureResult]:
    """Returns {"speedup": ..., "mape": ...}, rows keyed by sampling rate."""
    ctx = ctx or ExperimentContext(settings)
    kernels = list(ctx.settings.kernels)
    speedup_series: Dict[str, List[float]] = {}
    mape_series: Dict[str, List[float]] = {}
    # The reference is fixed across the sampling-rate sweep; precompute
    # its MAPE fields once per kernel.
    references = {kernel: MAPEReference(ctx.reference(kernel)) for kernel in kernels}
    for exponent in exponents:
        rate = 2.0**exponent
        scheduler = QAWS(policy="topk", sampler="striding", sampling_rate=rate)
        label = f"2^{exponent}"
        speedups: List[float] = []
        mapes: List[float] = []
        for kernel in kernels:
            runtime = SHMTRuntime(
                platform_for("QAWS-TS"), scheduler, config=ctx.settings.runtime_config
            )
            report = runtime.execute(ctx.call(kernel))
            baseline = ctx.run(kernel, "gpu-baseline")
            speedups.append(report.speedup_over(baseline))
            mapes.append(mape_percent(references[kernel], report.output))
        speedup_series[label] = speedups
        mape_series[label] = mapes
    speedup_result = FigureResult(
        name="Figure 9(b): QAWS-TS speedup vs sampling rate",
        kernels=kernels,
        series=speedup_series,
    )
    mape_result = FigureResult(
        name="Figure 9(a): QAWS-TS MAPE (%) vs sampling rate",
        kernels=kernels,
        series=mape_series,
    )
    speedup_result.compute_gmeans()
    mape_result.compute_gmeans()
    return {"speedup": speedup_result, "mape": mape_result}
