"""Figure 6: end-to-end speedup of every scheduling policy.

Reproduces the paper's headline result: per-kernel speedup over the GPU
baseline for IRA-sampling, software pipelining, even distribution, basic
work stealing, and the six QAWS variants.  The paper's geometric means are
work-stealing 2.07x, QAWS-TS 1.95x, QAWS-TU 1.92x, with the reduction
sampler variants trailing and IRA-sampling a 45% *slowdown*.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    FIG6_POLICIES,
    ExperimentContext,
    ExperimentSettings,
    FigureResult,
)


def run(
    settings: Optional[ExperimentSettings] = None,
    ctx: Optional[ExperimentContext] = None,
) -> FigureResult:
    ctx = ctx or ExperimentContext(settings)
    kernels = list(ctx.settings.kernels)
    series = {
        policy: [ctx.speedup(kernel, policy) for kernel in kernels]
        for policy in FIG6_POLICIES
    }
    result = FigureResult(
        name="Figure 6: speedup over GPU baseline",
        kernels=kernels,
        series=series,
    )
    result.compute_gmeans()
    return result
