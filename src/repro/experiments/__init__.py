"""Reproductions of every figure and table in the paper's evaluation."""

from repro.experiments.common import (
    BASELINE,
    FIG6_POLICIES,
    QUALITY_POLICIES,
    ExperimentContext,
    ExperimentSettings,
    FigureResult,
    platform_for,
)

__all__ = [
    "BASELINE",
    "FIG6_POLICIES",
    "QUALITY_POLICIES",
    "ExperimentContext",
    "ExperimentSettings",
    "FigureResult",
    "platform_for",
]
