"""The recorder protocol: how the runtime talks to observability.

:class:`Recorder` is a deliberate no-op -- every hook is a ``pass`` -- so
an unobserved run pays nothing beyond empty method calls and the runtime
can instrument unconditionally.  Call sites that would have to *compute*
something purely for telemetry (e.g. a predicted service time at dispatch)
gate on :attr:`Recorder.enabled` first, which keeps the disabled path
bit-identical to a runtime with no observability at all.

:class:`RunObserver` is the live implementation: it owns one
:class:`~repro.obs.metrics.MetricsRegistry`, one
:class:`~repro.obs.decisions.DecisionLog`, per-phase time accounting, and
the run's fault events, and :meth:`RunObserver.finalize` freezes them into
the :class:`RunMetrics` snapshot attached to reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.decisions import DecisionKind, DecisionLog
from repro.obs.metrics import MetricsRegistry

#: Canonical per-phase profiling buckets.  ``sampling`` through
#: ``aggregation`` are the pipeline stages of one VOP; ``canary`` is
#: IRA-style extra host work; ``faulted`` is device time burned by failed
#: or timed-out attempts.
PHASES = (
    "sampling",
    "canary",
    "dispatch",
    "transfer",
    "compute",
    "aggregation",
    "faulted",
)


@dataclass
class PhaseStat:
    """Accumulated simulated time in one (phase, resource) bucket."""

    seconds: float = 0.0
    count: int = 0


class Recorder:
    """No-op recorder: the default, near-zero-overhead implementation.

    Subclasses override any subset of the hooks.  The runtime guards
    telemetry-only computation behind :attr:`enabled`, so disabled runs
    never pay for values only a recorder would read.
    """

    enabled: bool = False

    def count(self, name: str, n: float = 1, **labels: str) -> None:
        """Increment counter ``name`` by ``n`` for one label set."""

    def gauge(self, name: str, value: float, **labels: str) -> None:
        """Set gauge ``name`` for one label set."""

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Add one observation to histogram ``name``."""

    def phase(self, phase: str, resource: str, seconds: float) -> None:
        """Charge ``seconds`` of simulated time to a profiling phase."""

    def decision(
        self,
        kind: DecisionKind,
        device: str,
        *,
        time: float,
        hlop_id: Optional[int] = None,
        unit_id: Optional[int] = None,
        why: str = "",
        predicted_seconds: Optional[float] = None,
        actual_seconds: Optional[float] = None,
    ) -> None:
        """Append one scheduler decision to the log."""

    def fault(self, event) -> None:
        """Record one observed :class:`~repro.faults.plan.FaultEvent`."""

    def violation(
        self,
        invariant: str,
        device: str,
        *,
        time: float,
        hlop_id: Optional[int] = None,
        unit_id: Optional[int] = None,
        detail: str = "",
    ) -> None:
        """Record one failed runtime invariant (see :mod:`repro.verify`)."""


#: Shared no-op instance; safe because the class holds no state.
NULL_RECORDER = Recorder()


@dataclass
class RunMetrics:
    """Frozen observability snapshot for one run, attached to reports."""

    registry: MetricsRegistry
    decisions: DecisionLog
    phases: Dict[Tuple[str, str], PhaseStat] = field(default_factory=dict)
    fault_events: List = field(default_factory=list)
    violations: List[Dict] = field(default_factory=list)

    def counter_value(self, name: str, **labels: str) -> float:
        instrument = self.registry.get(name)
        if instrument is None:
            return 0.0
        return instrument.value(**labels)

    def counter_total(self, name: str) -> float:
        instrument = self.registry.get(name)
        if instrument is None:
            return 0.0
        return instrument.total()

    @property
    def decision_counts(self) -> Dict[DecisionKind, int]:
        return self.decisions.counts()

    def phase_seconds(self, phase: str) -> float:
        """Total simulated seconds charged to ``phase`` across resources."""
        return sum(
            stat.seconds for (p, _), stat in self.phases.items() if p == phase
        )

    def phase_table(self) -> Dict[str, float]:
        """Phase -> total seconds, for quick summaries."""
        table: Dict[str, float] = {}
        for (phase, _), stat in self.phases.items():
            table[phase] = table.get(phase, 0.0) + stat.seconds
        return table


class RunObserver(Recorder):
    """Live recorder for one observed run."""

    enabled = True

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.decision_log = DecisionLog()
        self.phases: Dict[Tuple[str, str], PhaseStat] = {}
        self.fault_events: List = []
        self.violations: List[Dict] = []

    # ------------------------------------------------------------------ hooks

    def count(self, name: str, n: float = 1, **labels: str) -> None:
        self.registry.counter(name).inc(n, **labels)

    def gauge(self, name: str, value: float, **labels: str) -> None:
        self.registry.gauge(name).set(value, **labels)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.registry.histogram(name).observe(value, **labels)

    def phase(self, phase: str, resource: str, seconds: float) -> None:
        stat = self.phases.get((phase, resource))
        if stat is None:
            stat = PhaseStat()
            self.phases[(phase, resource)] = stat
        stat.seconds += seconds
        stat.count += 1

    def decision(
        self,
        kind: DecisionKind,
        device: str,
        *,
        time: float,
        hlop_id: Optional[int] = None,
        unit_id: Optional[int] = None,
        why: str = "",
        predicted_seconds: Optional[float] = None,
        actual_seconds: Optional[float] = None,
    ) -> None:
        self.decision_log.record(
            kind,
            device,
            time=time,
            hlop_id=hlop_id,
            unit_id=unit_id,
            why=why,
            predicted_seconds=predicted_seconds,
            actual_seconds=actual_seconds,
        )
        self.registry.counter("decisions_total").inc(1, kind=kind.value)

    def fault(self, event) -> None:
        self.fault_events.append(event)
        self.registry.counter("faults_total").inc(
            1, kind=event.kind.value, device=event.device
        )

    def violation(
        self,
        invariant: str,
        device: str,
        *,
        time: float,
        hlop_id: Optional[int] = None,
        unit_id: Optional[int] = None,
        detail: str = "",
    ) -> None:
        self.violations.append(
            {
                "invariant": invariant,
                "device": device,
                "time": time,
                "hlop": hlop_id,
                "unit": unit_id,
                "detail": detail,
            }
        )
        self.registry.counter("violations_total").inc(
            1, invariant=invariant, device=device
        )

    # --------------------------------------------------------------- snapshot

    def finalize(self) -> RunMetrics:
        """Freeze the observer's state into the report-attached snapshot.

        ``violations`` is shared by reference (like the registry and the
        decision log): post-run invariant checks land after the report's
        snapshot is taken, and must still be visible on it.
        """
        return RunMetrics(
            registry=self.registry,
            decisions=self.decision_log,
            phases=self.phases,
            fault_events=list(self.fault_events),
            violations=self.violations,
        )
