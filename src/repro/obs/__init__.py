"""Unified observability layer for the SHMT runtime (``repro.obs``).

Three zero-dependency pieces, one telemetry schema for clean runs and
chaos runs alike:

* a **metrics registry** -- counters, gauges, and histograms with labeled
  series (:mod:`repro.obs.metrics`);
* a **scheduler-decision log** -- every dispatch/steal/split/retry/
  re-queue/degrade with who, why, and predicted vs. actual service time
  (:mod:`repro.obs.decisions`);
* **per-phase profiling** and the recorder protocol that wires both into
  the runtime with a no-op default (:mod:`repro.obs.recorder`), plus
  JSONL/JSON export and schema validation (:mod:`repro.obs.export`).

Enable with ``RuntimeConfig(observe=True)``; the resulting
:class:`RunMetrics` rides on :class:`~repro.core.result.BatchReport` and
:class:`~repro.core.result.ExecutionReport`.  See docs/observability.md.
"""

from repro.obs.decisions import Decision, DecisionKind, DecisionLog
from repro.obs.export import (
    SCHEMA,
    read_jsonl,
    to_records,
    validate_jsonl,
    validate_records,
    write_json,
    write_jsonl,
    write_records_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    PHASES,
    PhaseStat,
    Recorder,
    RunMetrics,
    RunObserver,
)

__all__ = [
    "Decision",
    "DecisionKind",
    "DecisionLog",
    "SCHEMA",
    "read_jsonl",
    "to_records",
    "validate_jsonl",
    "validate_records",
    "write_json",
    "write_jsonl",
    "write_records_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "PHASES",
    "PhaseStat",
    "Recorder",
    "RunMetrics",
    "RunObserver",
]
