"""Structured scheduler-decision log.

Every scheduling action the runtime takes -- initial dispatch, steal,
split-steal, retry, re-queue, quality degradation, attempt completion --
appends one :class:`Decision`: who acted (the device), when (simulated
seconds), why (a short free-text reason), and the predicted vs. actual
service time where both are known.  This is the task-granular accounting
that lets experiments attribute scheduler overhead and mispredictions to
individual HLOPs instead of inferring them from aggregate makespans.

The log is append-only and carries a monotone sequence number, so two
runs with the same seed produce byte-identical logs -- tests assert on
that determinism, and exported JSONL diffs cleanly across code changes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


class DecisionKind(enum.Enum):
    """What kind of scheduling action a log entry records."""

    #: Initial plan assignment of an HLOP to a device queue.
    DISPATCH = "dispatch"
    #: An idle device took queued work from a victim.
    STEAL = "steal"
    #: An endgame steal that re-partitioned the last eligible HLOP.
    SPLIT = "split"
    #: Same-device retry after a transient failure or timeout.
    RETRY = "retry"
    #: Migration of an HLOP to a surviving device.
    REQUEUE = "requeue"
    #: An accuracy pin was relaxed so the run could finish.
    DEGRADE = "degrade"
    #: An attempt finished and its result was accepted.
    COMPLETE = "complete"


@dataclass(frozen=True)
class Decision:
    """One scheduling action, with its timing evidence.

    ``predicted_seconds`` is the performance model's service-time estimate
    at the moment of the decision; ``actual_seconds`` is the realized
    service time (only known for COMPLETE entries).  Their gap is the
    misprediction a latency-hiding analysis charges to the scheduler.
    """

    seq: int
    time: float
    kind: DecisionKind
    device: str
    hlop_id: Optional[int] = None
    unit_id: Optional[int] = None
    why: str = ""
    predicted_seconds: Optional[float] = None
    actual_seconds: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "decision",
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind.value,
            "device": self.device,
            "hlop": self.hlop_id,
            "unit": self.unit_id,
            "why": self.why,
            "predicted_s": self.predicted_seconds,
            "actual_s": self.actual_seconds,
        }


class DecisionLog:
    """Append-only, sequence-numbered record of scheduling actions."""

    def __init__(self) -> None:
        self._entries: List[Decision] = []

    def record(
        self,
        kind: DecisionKind,
        device: str,
        *,
        time: float,
        hlop_id: Optional[int] = None,
        unit_id: Optional[int] = None,
        why: str = "",
        predicted_seconds: Optional[float] = None,
        actual_seconds: Optional[float] = None,
    ) -> Decision:
        decision = Decision(
            seq=len(self._entries),
            time=time,
            kind=kind,
            device=device,
            hlop_id=hlop_id,
            unit_id=unit_id,
            why=why,
            predicted_seconds=predicted_seconds,
            actual_seconds=actual_seconds,
        )
        self._entries.append(decision)
        return decision

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> Decision:
        return self._entries[index]

    def of_kind(self, kind: DecisionKind) -> List[Decision]:
        return [d for d in self._entries if d.kind is kind]

    def count(self, kind: DecisionKind) -> int:
        return sum(1 for d in self._entries if d.kind is kind)

    def counts(self) -> Dict[DecisionKind, int]:
        """Entry count per kind (kinds never recorded are absent)."""
        totals: Dict[DecisionKind, int] = {}
        for decision in self._entries:
            totals[decision.kind] = totals.get(decision.kind, 0) + 1
        return totals

    def to_dicts(self) -> List[Dict[str, object]]:
        return [d.to_dict() for d in self._entries]
