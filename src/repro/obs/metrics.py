"""Zero-dependency metrics primitives: counters, gauges, histograms.

The registry is the numeric half of the observability layer (the other
half is the decision log, :mod:`repro.obs.decisions`).  Every metric
supports *labeled series* -- ``counter.inc(1, device="gpu0")`` and
``counter.inc(1, device="tpu0")`` accumulate independently -- the shape
HTS-style schedulers use to account overhead per device class and per
pipeline stage without one instrument per series.

Times here are *simulated* seconds: instruments never read the wall
clock, so a snapshot is exactly reproducible for a fixed run seed.
Snapshots order series by sorted label key, which keeps JSONL exports
byte-stable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: A label set, normalized to a sorted tuple of (key, value) pairs so it
#: can key a dict and sort deterministically.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds: decades from 100ns to 10s,
#: spanning every simulated duration the runtime produces (launch
#: latencies through whole-batch makespans).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(10.0**e for e in range(-7, 2))


def labels_key(labels: Mapping[str, str]) -> LabelKey:
    """Normalize a label mapping to its canonical tuple form."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count, one value per label set."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, float] = {}

    def inc(self, n: float = 1, **labels: str) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        key = labels_key(labels)
        self._series[key] = self._series.get(key, 0.0) + n

    def value(self, **labels: str) -> float:
        return self._series.get(labels_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._series.values())

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)


class Gauge:
    """Last-written value, one per label set (e.g. energy at end of run)."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._series[labels_key(labels)] = float(value)

    def value(self, **labels: str) -> Optional[float]:
        return self._series.get(labels_key(labels))

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)


@dataclass
class HistogramSeries:
    """Accumulated observations for one label set of a histogram."""

    bucket_counts: List[int]
    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")


class Histogram:
    """Bucketed distribution of observed values, one series per label set.

    Buckets are cumulative upper bounds (Prometheus style); every
    observation also lands in the implicit ``+Inf`` bucket, so
    ``bucket_counts[-1] == count`` always holds.
    """

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        bounds = tuple(buckets if buckets is not None else DEFAULT_BUCKETS)
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: bucket bounds must be sorted")
        self.bounds: Tuple[float, ...] = bounds + (float("inf"),)
        self._series: Dict[LabelKey, HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = labels_key(labels)
        series = self._series.get(key)
        if series is None:
            series = HistogramSeries(bucket_counts=[0] * len(self.bounds))
            self._series[key] = series
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                series.bucket_counts[index] += 1
        series.count += 1
        series.sum += value
        series.min = min(series.min, value)
        series.max = max(series.max, value)

    def summary(self, **labels: str) -> Optional[HistogramSeries]:
        return self._series.get(labels_key(labels))

    def quantile(self, q: float, **labels: str) -> Optional[float]:
        """Estimate the ``q``-quantile (0..1) of one series from its buckets.

        Prometheus-style linear interpolation inside the containing
        bucket, clamped to the observed ``[min, max]`` so the estimate
        never leaves the data's range (the +Inf bucket reports ``max``).
        Returns ``None`` for an unobserved series.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        series = self._series.get(labels_key(labels))
        if series is None or series.count == 0:
            return None
        rank = q * series.count
        previous_bound = 0.0
        previous_cumulative = 0
        for bound, cumulative in zip(self.bounds, series.bucket_counts):
            if cumulative >= rank:
                if bound == float("inf"):
                    return series.max
                in_bucket = cumulative - previous_cumulative
                if in_bucket == 0:
                    estimate = bound
                else:
                    fraction = (rank - previous_cumulative) / in_bucket
                    estimate = previous_bound + fraction * (bound - previous_bound)
                return min(max(estimate, series.min), series.max)
            previous_bound = bound
            previous_cumulative = cumulative
        return series.max

    def series(self) -> Dict[LabelKey, HistogramSeries]:
        return dict(self._series)


class MetricsRegistry:
    """Owns every instrument of one run; get-or-create by name.

    A name is bound to exactly one instrument type for the registry's
    lifetime -- asking for ``counter("x")`` after ``gauge("x")`` is a
    programming error and raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind: type, factory) -> object:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, help, buckets))

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[object]:
        return self._instruments.get(name)

    def snapshot(self) -> List[Dict[str, object]]:
        """Flatten every series to plain dicts, deterministically ordered.

        One dict per (instrument, label set); the export layer turns
        these directly into JSONL records.
        """
        records: List[Dict[str, object]] = []
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, (Counter, Gauge)):
                kind = "counter" if isinstance(instrument, Counter) else "gauge"
                for key in sorted(instrument.series()):
                    records.append(
                        {
                            "type": kind,
                            "name": name,
                            "labels": dict(key),
                            "value": instrument.series()[key],
                        }
                    )
            elif isinstance(instrument, Histogram):
                for key in sorted(instrument.series()):
                    series = instrument.series()[key]
                    records.append(
                        {
                            "type": "histogram",
                            "name": name,
                            "labels": dict(key),
                            "count": series.count,
                            "sum": series.sum,
                            "min": series.min,
                            "max": series.max,
                            "buckets": [
                                {"le": bound, "count": count}
                                for bound, count in zip(
                                    instrument.bounds, series.bucket_counts
                                )
                            ],
                        }
                    )
        return records
