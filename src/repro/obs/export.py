"""Export :class:`~repro.obs.recorder.RunMetrics` as JSONL / JSON.

One record per line, every record a flat JSON object with a ``type``
discriminator -- the schema both chaos runs and clean runs share:

* ``meta``      -- schema version plus caller-provided context (kernel,
                   policy, seed, ...); always the first record.
* ``counter`` / ``gauge``  -- one record per (name, label set).
* ``histogram`` -- count/sum/min/max plus cumulative buckets.
* ``phase``     -- per-(phase, resource) simulated seconds and entry count.
* ``decision``  -- one scheduler decision (see :mod:`repro.obs.decisions`).
* ``fault``     -- one observed fault event, mirroring
                   :class:`~repro.faults.plan.FaultEvent`.
* ``violation`` -- one failed runtime invariant (see :mod:`repro.verify`),
                   naming the invariant, device, sim-time, and HLOP.

:func:`validate_records` is the schema check used by
``scripts/obs_check.py`` and the CI metrics smoke step.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.recorder import RunMetrics

#: Schema identifier stamped into every export's meta record.
SCHEMA = "repro.obs/v1"

#: Record types the schema admits, with the fields each must carry.
_REQUIRED_FIELDS: Dict[str, tuple] = {
    "meta": ("schema",),
    "counter": ("name", "labels", "value"),
    "gauge": ("name", "labels", "value"),
    "histogram": ("name", "labels", "count", "sum", "min", "max", "buckets"),
    "phase": ("phase", "resource", "seconds", "count"),
    "decision": ("seq", "time", "kind", "device", "why"),
    "fault": ("time", "kind", "device", "detail"),
    "violation": ("invariant", "device", "time", "detail"),
}


def to_records(
    metrics: RunMetrics, meta: Optional[Mapping[str, Any]] = None
) -> List[Dict[str, Any]]:
    """Flatten a run's metrics into schema records (meta record first)."""
    records: List[Dict[str, Any]] = [{"type": "meta", "schema": SCHEMA}]
    if meta:
        records[0].update({str(k): v for k, v in meta.items()})
    records.extend(metrics.registry.snapshot())
    for (phase, resource) in sorted(metrics.phases):
        stat = metrics.phases[(phase, resource)]
        records.append(
            {
                "type": "phase",
                "phase": phase,
                "resource": resource,
                "seconds": stat.seconds,
                "count": stat.count,
            }
        )
    records.extend(metrics.decisions.to_dicts())
    for event in metrics.fault_events:
        records.append(
            {
                "type": "fault",
                "time": event.time,
                "kind": event.kind.value,
                "device": event.device,
                "hlop": event.hlop_id,
                "unit": event.unit_id,
                "detail": event.detail,
            }
        )
    for violation in metrics.violations:
        records.append({"type": "violation", **violation})
    return records


def write_jsonl(
    metrics: RunMetrics, path: str, meta: Optional[Mapping[str, Any]] = None
) -> None:
    """Write one run's metrics to ``path``, one JSON record per line."""
    write_records_jsonl(to_records(metrics, meta), path)


def write_records_jsonl(records: List[Dict[str, Any]], path: str) -> None:
    """Write pre-built schema records (e.g. several runs') as JSONL."""
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


def write_json(
    metrics: RunMetrics, path: str, meta: Optional[Mapping[str, Any]] = None
) -> None:
    """Write the same records as one JSON array (for tools that dislike JSONL)."""
    with open(path, "w") as handle:
        json.dump(to_records(metrics, meta), handle, indent=2)


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load an exported JSONL file back into records."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_records(records: List[Dict[str, Any]]) -> None:
    """Check records against the schema; raise ``ValueError`` on violation.

    Validates the envelope (known types, required fields), the meta
    record's presence and schema id, and the internal consistency of
    histograms (cumulative buckets summing to ``count``) and decisions
    (``seq`` monotone from 0 within each run; a meta record starts a new
    run, so multi-run exports concatenate cleanly).
    """
    if not records:
        raise ValueError("empty export: expected at least a meta record")
    first = records[0]
    if first.get("type") != "meta":
        raise ValueError(f"first record must be meta, got {first.get('type')!r}")
    expected_seq = 0
    for index, record in enumerate(records):
        rtype = record.get("type")
        if rtype not in _REQUIRED_FIELDS:
            raise ValueError(f"record {index}: unknown type {rtype!r}")
        missing = [f for f in _REQUIRED_FIELDS[rtype] if f not in record]
        if missing:
            raise ValueError(f"record {index} ({rtype}): missing fields {missing}")
        if rtype == "meta":
            if not str(record["schema"]).startswith("repro.obs/"):
                raise ValueError(f"record {index}: unknown schema {record['schema']!r}")
            expected_seq = 0
        if rtype == "histogram":
            buckets = record["buckets"]
            if not buckets or buckets[-1]["count"] != record["count"]:
                raise ValueError(
                    f"record {index}: +Inf bucket must equal count={record['count']}"
                )
            counts = [b["count"] for b in buckets]
            if counts != sorted(counts):
                raise ValueError(f"record {index}: bucket counts must be cumulative")
        if rtype == "decision":
            if record["seq"] != expected_seq:
                raise ValueError(
                    f"record {index}: decision seq {record['seq']} != {expected_seq}"
                )
            expected_seq += 1


def validate_jsonl(path: str) -> int:
    """Validate an exported JSONL file; returns the record count."""
    records = read_jsonl(path)
    validate_records(records)
    return len(records)
