"""Benchmark: measure paper Figure 1 (execution-model comparison).

Figure 1 is the paper's motivating schematic: conventional delegation
leaves most devices idle; SHMT fills them.  This benchmark quantifies the
schematic on a five-function program and asserts its story: utilization
climbs and time falls from conventional -> SHMT-serial -> SHMT-concurrent.
"""

from repro.experiments import fig1


def test_fig1_execution_models(benchmark, settings):
    result = benchmark.pedantic(lambda: fig1.run(settings), rounds=1, iterations=1)
    print()
    print(result.format_table())

    time_conventional = result.value("time (ms)", "conventional")
    time_serial = result.value("time (ms)", "SHMT-serial")
    time_concurrent = result.value("time (ms)", "SHMT-concurrent")
    assert time_concurrent < time_serial < time_conventional

    util = [
        result.value("mean device utilization", style)
        for style in ("conventional", "SHMT-serial", "SHMT-concurrent")
    ]
    assert util[0] < util[1] < util[2] <= 1.0
    # Conventional delegation idles ~2 of 3 devices.
    assert util[0] < 0.45
    # The full SHMT model keeps the platform mostly busy.
    assert util[2] > 0.6
    assert result.value("speedup", "SHMT-concurrent") > 1.4
