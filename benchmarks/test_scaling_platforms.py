"""Benchmark: accelerator-scaling study (extension beyond the paper).

Sweeps platform compositions from GPU-only to GPU+2×TPU+CPU+DSP under
work stealing and checks the Amdahl-style shape: every added accelerator
helps, with diminishing returns bounded by each kernel's calibrated
serial fractions.
"""

from repro.experiments import scaling
from repro.experiments.common import ExperimentSettings

KERNELS = ["fft", "sobel", "dct8x8", "srad", "histogram"]


def test_accelerator_scaling(benchmark):
    settings = ExperimentSettings(kernels=KERNELS)

    result = benchmark.pedantic(lambda: scaling.run(settings), rounds=1, iterations=1)
    print()
    print(result.format_table())

    gmeans = [result.aggregates[label] for label in result.series]
    # Monotone improvement as accelerators are added...
    for earlier, later in zip(gmeans, gmeans[1:]):
        assert later >= earlier * 0.98
    # ...the first TPU is the big win...
    first_tpu_gain = gmeans[1] - gmeans[0]
    second_tpu_gain = gmeans[3] - gmeans[2]
    assert first_tpu_gain > second_tpu_gain
    # ...and the platform never beats the calibrated serial bound.
    from repro.analysis import theoretical_speedup_bound
    from repro.devices.perf_model import CALIBRATION

    for kernel in KERNELS:
        # Bound with unlimited devices: serial overhead only.
        cal = CALIBRATION[kernel]
        ceiling = 1.0 / cal.shmt_overhead_fraction
        assert result.value(list(result.series)[-1], kernel) < ceiling
