"""Benchmark: regenerate paper Figure 7 (MAPE of every quality policy).

Paper headline (GMEAN): Edge-TPU-only 5.15%, work-stealing 2.85%, all QAWS
variants < 2%, IRA 1.85%, oracle 1.77%.
"""

from repro.experiments import fig7


def test_fig7_mape(benchmark, settings, ctx):
    result = benchmark.pedantic(
        lambda: fig7.run(settings, ctx=ctx), rounds=1, iterations=1
    )
    print()
    print(result.format_table())
    agg = result.aggregates

    # The central quality ordering: TPU-only >> work stealing > QAWS ~ oracle.
    assert agg["edge-tpu-only"] > 1.5 * agg["work-stealing"]
    assert agg["work-stealing"] > agg["QAWS-TS"]
    assert agg["oracle"] <= agg["QAWS-TS"] * 1.1
    for variant in ("QAWS-TU", "QAWS-TR", "QAWS-LS", "QAWS-LU", "QAWS-LR"):
        assert agg[variant] < agg["edge-tpu-only"]

    # Cross-kernel pattern (section 5.3): near-zero-output edge detectors
    # dominate the error; dense-output kernels stay low.
    tpu = {k: result.value("edge-tpu-only", k) for k in result.kernels}
    assert tpu["sobel"] > 10.0 and tpu["laplacian"] > 10.0
    assert tpu["blackscholes"] > 10.0
    assert tpu["srad"] < 5.0 and tpu["mean_filter"] < 5.0 and tpu["histogram"] < 8.0
