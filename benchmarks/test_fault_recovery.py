"""Benchmark: fault-recovery overhead of the fault-tolerant runtime.

Measures three things the fault framework promises:

* attaching a fault-free plan costs *nothing* (bit-identical output,
  identical makespan);
* a chaos plan (GPU death mid-run + 5% transient failures) still yields
  complete, finite output on every headline policy, with the recovery
  machinery (retries / re-queues) visibly engaged;
* the makespan under chaos stays within a small factor of the fault-free
  run -- recovery degrades performance, never correctness.
"""

import numpy as np
import pytest

from repro.core.partition import PartitionConfig
from repro.core.runtime import RuntimeConfig, SHMTRuntime
from repro.core.schedulers.base import make_scheduler
from repro.devices.platform import jetson_nano_platform
from repro.faults import DeviceDeath, FaultPlan, TransientFaults
from repro.workloads.generator import generate

POLICIES = ["even-distribution", "work-stealing", "QAWS-TS"]
PARTITION = PartitionConfig(target_partitions=16)


def _execute(policy, call, fault_plan=None):
    runtime = SHMTRuntime(
        jetson_nano_platform(),
        make_scheduler(policy),
        RuntimeConfig(partition=PARTITION, fault_plan=fault_plan),
    )
    return runtime.execute(call)


def _chaos_plan(clean_makespan):
    return FaultPlan(
        transient=(TransientFaults("*", probability=0.05),),
        deaths=(DeviceDeath("gpu0", at_time=clean_makespan * 0.5),),
    )


@pytest.mark.parametrize("policy", POLICIES)
def test_fault_recovery_overhead(benchmark, policy):
    call = generate("sobel", size=(512, 512), seed=3)
    clean = _execute(policy, call)
    plan = _chaos_plan(clean.makespan)
    chaos = benchmark.pedantic(
        lambda: _execute(policy, call, fault_plan=plan), rounds=1, iterations=1
    )

    # Correctness under chaos: complete, finite, recovery engaged.
    assert chaos.output.shape == clean.output.shape
    assert np.all(np.isfinite(chaos.output))
    assert chaos.retry_count + chaos.requeue_count > 0

    # Recovery costs time, bounded: losing the fastest device and 5% of
    # attempts cannot blow the makespan up by an order of magnitude.
    overhead = chaos.makespan / clean.makespan
    print(
        f"\n{policy}: clean={clean.makespan * 1e3:.3f}ms "
        f"chaos={chaos.makespan * 1e3:.3f}ms overhead={overhead:.2f}x "
        f"retries={chaos.retry_count} requeues={chaos.requeue_count} "
        f"faults={len(chaos.fault_events)}"
    )
    assert 1.0 <= overhead < 10.0


def test_fault_framework_is_free_when_quiet(benchmark):
    """Fault-free plan attached: bit-identical output, identical makespan."""
    call = generate("srad", size=(512, 512), seed=4)
    clean = _execute("work-stealing", call)
    quiet = benchmark.pedantic(
        lambda: _execute(
            "work-stealing",
            call,
            fault_plan=FaultPlan(transient=(TransientFaults("*", 0.0),)),
        ),
        rounds=1,
        iterations=1,
    )
    assert np.array_equal(clean.output, quiet.output)
    assert quiet.makespan == clean.makespan
    assert quiet.fault_events == []
