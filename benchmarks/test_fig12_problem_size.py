"""Benchmark: regenerate paper Figure 12 (speedup vs problem size).

Paper shape: QAWS-TS speedup grows with problem size across 4K..64M
elements -- small problems leave devices starved and fixed costs dominant.
The harness sweeps 4K..16M by default (64M moves multi-GB arrays through
the numeric kernels; pass max_elements=64*2**20 to fig12.run for the full
range).
"""

from repro.experiments import fig12
from repro.experiments.common import ExperimentSettings


def test_fig12_problem_size(benchmark, settings):
    result = benchmark.pedantic(
        lambda: fig12.run(ExperimentSettings(seed=settings.seed)),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format_table())

    labels = list(result.series)
    gmeans = [result.aggregates[label] for label in labels]

    # Monotone-ish growth: every doubling is >= 0.92x the previous point,
    # and the ends are strongly ordered.
    for earlier, later in zip(gmeans, gmeans[1:]):
        assert later > 0.92 * earlier
    assert gmeans[0] < 1.2  # tiny problems: no real benefit
    assert gmeans[-1] > 1.6  # large problems: the calibrated plateau
    assert gmeans[-1] > 1.5 * gmeans[0]
