"""Shared state for the benchmark harness.

One :class:`ExperimentContext` per session, at the paper's (scaled) default
problem size, so the GPU-baseline runs, workloads, and FP64 references are
computed once and shared across every figure's benchmark.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentContext, ExperimentSettings


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext(ExperimentSettings(seed=0))


@pytest.fixture(scope="session")
def settings(ctx):
    return ctx.settings
