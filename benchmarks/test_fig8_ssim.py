"""Benchmark: regenerate paper Figure 8 (SSIM of the image kernels).

Paper headline: every QAWS variant keeps SSIM above ~0.98 on average,
close to the oracle's 0.9957; TPU-only dips to 0.9537 (0.89-0.92 on the
edge detectors); work stealing lands at 0.9753.
"""

from repro.experiments import fig8


def test_fig8_ssim(benchmark, settings, ctx):
    result = benchmark.pedantic(
        lambda: fig8.run(settings, ctx=ctx), rounds=1, iterations=1
    )
    print()
    print(result.format_table())
    agg = result.aggregates

    assert agg["edge-tpu-only"] < agg["work-stealing"] <= agg["QAWS-TS"] * 1.02
    assert agg["oracle"] >= agg["edge-tpu-only"]
    assert agg["QAWS-TS"] > 0.95  # paper: 0.9916
    # Edge detectors are where TPU-only loses visual quality.
    assert result.value("edge-tpu-only", "sobel") < result.value("QAWS-TS", "sobel")
    assert result.value("edge-tpu-only", "laplacian") < result.value(
        "QAWS-TS", "laplacian"
    )
    for policy, values in result.series.items():
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in values), policy
