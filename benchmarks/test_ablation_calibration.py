"""Ablation: scheduler conclusions must survive calibration perturbation.

The timing model is calibrated to the paper's published numbers
(DESIGN.md, design decision #1).  If the evaluation's conclusions only
held at the exact calibration point, the reproduction would be fragile --
so this ablation perturbs the per-kernel device-speed calibration by
+/-25% and verifies the *qualitative* results are unchanged:

* work stealing still beats even distribution,
* QAWS-TS still lands within a few percent of work stealing,
* IRA-sampling is still a slowdown,
* the reduction-sampling variants still trail.
"""

import dataclasses

import pytest

from repro.devices import perf_model
from repro.experiments import fig6
from repro.experiments.common import ExperimentContext, ExperimentSettings

KERNELS = ["fft", "sobel", "dwt", "histogram"]


def _perturbed_calibration(factor_tpu: float, factor_cpu: float):
    return {
        name: dataclasses.replace(
            cal,
            tpu_speedup=cal.tpu_speedup * factor_tpu,
            cpu_speedup=cal.cpu_speedup * factor_cpu,
        )
        for name, cal in perf_model.CALIBRATION.items()
    }


@pytest.mark.parametrize(
    "factor_tpu,factor_cpu",
    [(0.75, 1.0), (1.25, 1.0), (1.0, 0.75), (1.0, 1.25), (1.25, 0.75)],
)
def test_policy_ranking_stable_under_perturbation(
    benchmark, monkeypatch, factor_tpu, factor_cpu
):
    perturbed = _perturbed_calibration(factor_tpu, factor_cpu)
    monkeypatch.setattr(perf_model, "CALIBRATION", perturbed)

    settings = ExperimentSettings(size=512 * 512, kernels=KERNELS)

    def sweep():
        return fig6.run(settings, ctx=ExperimentContext(settings))

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    agg = result.aggregates
    assert agg["work-stealing"] > agg["even-distribution"]
    assert agg["QAWS-TS"] > 0.85 * agg["work-stealing"]
    assert agg["IRA-sampling"] < 1.0
    assert agg["QAWS-TR"] <= agg["QAWS-TS"] * 1.02
