"""Benchmark: regenerate paper Figure 6 (speedup of every policy).

Paper headline numbers (GMEAN over ten kernels): work-stealing 2.07x,
QAWS-TS 1.95x, QAWS-TU 1.92x, QAWS-LR 1.45x, software pipelining 1.25x,
even distribution 0.99x, IRA-sampling 0.55x.
"""

from repro.experiments import fig6


def test_fig6_speedup(benchmark, settings, ctx):
    result = benchmark.pedantic(
        lambda: fig6.run(settings, ctx=ctx), rounds=1, iterations=1
    )
    print()
    print(result.format_table())
    agg = result.aggregates

    # Who wins, by roughly what factor.
    assert 1.7 < agg["work-stealing"] < 2.4  # paper: 2.07
    assert 1.6 < agg["QAWS-TS"] < 2.2  # paper: 1.95
    assert agg["IRA-sampling"] < 0.8  # paper: 0.55 (a slowdown)
    assert 1.0 < agg["sw-pipelining"] < 1.5  # paper: 1.25

    # Orderings the paper calls out.
    assert agg["work-stealing"] >= agg["QAWS-TS"]
    assert agg["QAWS-TS"] >= agg["QAWS-TU"] * 0.98  # striding <= uniform cost
    assert agg["QAWS-TR"] < agg["QAWS-TS"]  # reduction sampling is costly
    assert agg["QAWS-LS"] < agg["QAWS-TS"]  # top-K beats device limits
    assert agg["even-distribution"] < agg["work-stealing"]

    # Per-kernel crossover: FFT is the biggest winner, Blackscholes ~flat.
    assert result.value("work-stealing", "fft") > 3.0
    assert result.value("work-stealing", "blackscholes") < 1.3
