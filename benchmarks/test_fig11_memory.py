"""Benchmark: regenerate paper Figure 11 (memory footprint ratio).

Paper headline: GMEAN 0.986 -- near parity, with Sobel (0.714) and SRAD
(0.750) *below* 1.0 because Edge TPU on-chip buffers replace their GPU
implementations' large intermediate allocations.
"""

from repro.experiments import fig11


def test_fig11_memory(benchmark, settings, ctx):
    result = benchmark.pedantic(
        lambda: fig11.run(settings, ctx=ctx), rounds=1, iterations=1
    )
    print()
    print(result.format_table())

    ratios = {k: result.value("footprint ratio", k) for k in result.kernels}
    assert 0.9 < result.aggregates["footprint ratio"] < 1.1  # paper: 0.986
    assert ratios["sobel"] < 0.9  # paper: 0.714
    assert ratios["srad"] < 0.9  # paper: 0.750
    for kernel in ("dct8x8", "dwt", "fft", "histogram", "hotspot", "mean_filter"):
        assert 0.95 < ratios[kernel] < 1.2  # paper: 1.0 - 1.12
