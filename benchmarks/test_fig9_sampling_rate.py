"""Benchmark: regenerate paper Figure 9 (quality/speedup vs sampling rate).

Paper shape: MAPE decreases monotonically with sampling rate until the
sweet spot, then plateaus; speedup is essentially flat across rates.  Our
rate axis is shifted by the partition-size ratio (see fig9 docstring).
"""

from repro.experiments import fig9


def test_fig9_sampling_rate(benchmark, settings, ctx):
    results = benchmark.pedantic(
        lambda: fig9.run(settings, ctx=ctx), rounds=1, iterations=1
    )
    print()
    print(results["mape"].format_table())
    print()
    print(results["speedup"].format_table())

    mape = results["mape"].aggregates
    speedup = results["speedup"].aggregates
    labels = list(results["mape"].series)

    # Coarse-to-fine improvement, then plateau.
    assert mape[labels[-1]] <= mape[labels[0]]
    plateau = mape[labels[-2]]
    assert abs(mape[labels[-1]] - plateau) < 0.35 * plateau + 0.2

    # Speedup roughly flat: the cheapest and densest rates within ~15%.
    flat_band = 0.15 * speedup[labels[0]]
    assert abs(speedup[labels[-1]] - speedup[labels[0]]) < flat_band
