"""Ablation: HLOP re-partitioning on steal (paper section 3.4).

The paper notes that stealing across devices with mismatched granularity
"may need to further fuse or partition HLOPs".  This ablation measures
what that granularity adaptation buys: with coarse partitions (few HLOPs
per device), the endgame leaves a whole HLOP stranded on a slow device;
splitting it rate-proportionally shortens the tail.
"""

import pytest

from repro.core.partition import PartitionConfig
from repro.core.runtime import RuntimeConfig, SHMTRuntime
from repro.core.schedulers.base import make_scheduler
from repro.devices.platform import gpu_only_platform, jetson_nano_platform
from repro.metrics.stats import geometric_mean
from repro.workloads.generator import generate

KERNELS = ("fft", "srad", "dct8x8", "sobel")


def _speedups(split_on_steal: bool, target_partitions: int):
    config = RuntimeConfig(
        partition=PartitionConfig(target_partitions=target_partitions),
        split_on_steal=split_on_steal,
    )
    speedups = []
    for kernel in KERNELS:
        call = generate(kernel, size=1024 * 1024, seed=0)
        base = SHMTRuntime(
            gpu_only_platform(), make_scheduler("gpu-baseline"), config
        ).execute(call)
        shmt = SHMTRuntime(
            jetson_nano_platform(), make_scheduler("work-stealing"), config
        ).execute(call)
        speedups.append(base.makespan / shmt.makespan)
    return geometric_mean(speedups)


@pytest.mark.parametrize("target_partitions", [4, 8])
def test_split_on_steal_improves_coarse_grain_endgame(benchmark, target_partitions):
    def run_pair():
        return (
            _speedups(False, target_partitions),
            _speedups(True, target_partitions),
        )

    without, with_split = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print(
        f"\n{target_partitions} partitions: "
        f"speedup {without:.3f}x -> {with_split:.3f}x with split-on-steal"
    )
    # Granularity adaptation never hurts and helps at coarse grain.
    assert with_split >= without * 0.99
    if target_partitions <= 4:
        assert with_split > without
