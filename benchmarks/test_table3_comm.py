"""Benchmark: regenerate paper Table 3 (communication overhead).

Paper headline: every benchmark waits about-or-below ~1% of device time on
data exchange (GMEAN 0.71%), thanks to double buffering and long-enough
compute per HLOP.
"""

from repro.experiments import table3


def test_table3_comm_overhead(benchmark, settings, ctx):
    result = benchmark.pedantic(
        lambda: table3.run(settings, ctx=ctx), rounds=1, iterations=1
    )
    print()
    print(result.format_table())

    for kernel in result.kernels:
        assert result.value("measured", kernel) < 3.0, kernel  # percent
    assert result.aggregates["measured"] < 1.5  # paper GMEAN: 0.71
