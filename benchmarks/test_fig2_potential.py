"""Benchmark: regenerate paper Figure 2 (theoretical potential of SHMT)."""

from repro.experiments import fig2
from repro.devices.perf_model import PAPER_TARGETS


def test_fig2_potential(benchmark, settings, ctx):
    result = benchmark.pedantic(
        lambda: fig2.run(settings, ctx=ctx), rounds=1, iterations=1
    )
    print()
    print(result.format_table())

    # Shape: measured TPU-relative speed tracks the paper's Figure 2 ratios
    # within a factor, and the ranking of TPU affinity across kernels is
    # preserved (FFT/SRAD/DCT at the top, DWT/MF at the bottom).
    for kernel in result.kernels:
        measured = result.value("edge TPU (measured)", kernel)
        paper = PAPER_TARGETS[kernel]["tpu"]
        assert paper / 2 < measured < paper * 2, kernel
    measured_order = sorted(
        result.kernels, key=lambda k: result.value("edge TPU (measured)", k)
    )
    paper_order = sorted(result.kernels, key=lambda k: PAPER_TARGETS[k]["tpu"])
    assert set(measured_order[-3:]) == set(paper_order[-3:])
    assert set(measured_order[:2]) == set(paper_order[:2])
    # Conventional-best averages modestly above 1; SHMT's bound far above.
    assert result.aggregates["conventional best"] > 1.0
    assert result.aggregates["SHMT theoretical"] > 2.0
