"""Benchmark: regenerate paper Figure 10 (energy and EDP).

Paper headline: SHMT with QAWS-TS cuts energy 51.0% and EDP 78.0% versus
the GPU baseline (GMEAN normalized energy 0.490, EDP 0.220).
"""

from repro.experiments import fig10


def test_fig10_energy(benchmark, settings, ctx):
    result = benchmark.pedantic(
        lambda: fig10.run(settings, ctx=ctx), rounds=1, iterations=1
    )
    print()
    print(result.format_table())
    agg = result.aggregates

    # Energy drops, by roughly the paper's factor.
    assert 0.35 < agg["SHMT energy"] < 0.75  # paper: 0.490
    assert 0.12 < agg["SHMT EDP"] < 0.5  # paper: 0.220
    assert agg["SHMT EDP"] < agg["SHMT energy"]  # EDP compounds the speedup

    # The biggest winners (FFT, SRAD) save the most energy.
    assert result.value("SHMT energy", "fft") < result.value(
        "SHMT energy", "blackscholes"
    )
    assert result.value("SHMT energy", "srad") < 0.5
