#!/usr/bin/env python
"""Option-pricing desk: quality control on a finance workload.

Prices a large book of European options (the paper's Blackscholes
benchmark, Table 2's finance domain).  Most of the book is routine -- the
Edge TPU's INT8 NPU path prices it fine -- but volatility-spike clusters
produce exactly the wide value distributions QAWS flags as critical and
routes to exact devices.

The example compares quality-blind work stealing against QAWS on the
worst-case pricing error of the critical cluster.

Run:  python examples/option_pricing.py
"""

import numpy as np

from repro import SHMTRuntime, jetson_nano_platform, make_scheduler
from repro.metrics import mape_percent
from repro.workloads import generate


def main() -> None:
    book = generate("blackscholes", size=1 << 20, seed=23)
    reference = book.spec.reference(book.data.astype("float64"), None)
    vol = book.data[4]
    # The risk desk cares most about the high-volatility names.
    risky = vol > np.percentile(vol, 95)

    print(f"=== Pricing {book.data.shape[1]:,} European options ===")
    print(f"{'policy':16s} {'latency':>10s} {'book MAPE':>10s} {'risky MAPE':>11s}")

    platform = jetson_nano_platform()
    for policy in ("work-stealing", "QAWS-TS", "QAWS-LS", "oracle"):
        report = SHMTRuntime(platform, make_scheduler(policy)).execute(book)
        overall = mape_percent(reference, report.output)
        risky_error = mape_percent(reference[:, risky], report.output[:, risky])
        print(
            f"{policy:16s} {report.makespan * 1e3:8.2f} ms "
            f"{overall:9.2f}% {risky_error:10.2f}%"
        )

    print()
    print("Option prices are sensitive everywhere, so pinning budgets buy")
    print("only modest improvements here -- the paper's Figure 7 shows the")
    print("same for Blackscholes (42% TPU-only error only drops to ~11%")
    print("under any policy).  The device-limit policy, whose threshold is")
    print("absolute rather than a fixed budget, excludes the most extreme")
    print("volatility clusters and edges out the others on the risky tail.")


if __name__ == "__main__":
    main()
