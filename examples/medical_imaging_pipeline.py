#!/usr/bin/env python
"""Medical-imaging pipeline: a multi-VOP SHMT program.

Reproduces the paper's Figure 1 scenario in its medical-imaging domain
(Table 2 lists SRAD as the medical-imaging benchmark): an ultrasound frame
goes through despeckling, diffusion, and edge extraction, each function
executing as one VOP whose HLOPs spread across every device concurrently.

The same program is run under three policies to show the latency/quality
trade the paper's evaluation is about.

Run:  python examples/medical_imaging_pipeline.py
"""

import numpy as np

from repro import (
    Program,
    SHMTRuntime,
    gpu_only_platform,
    jetson_nano_platform,
    make_scheduler,
)
from repro.metrics import ssim
from repro.workloads import generate


def build_program(frame: np.ndarray) -> Program:
    """Despeckle -> anisotropic diffusion -> edge map."""
    return (
        Program()
        .add("despeckle", "Mean_Filter", frame)
        .add("diffuse", "SRAD", "despeckle")
        .add("edges", "Sobel", "diffuse")
    )


def main() -> None:
    frame = generate("srad", size=(1024, 1024), seed=11).data

    print("=== Ultrasound pipeline: mean-filter -> SRAD -> Sobel (1024x1024) ===")
    print(f"{'policy':16s} {'latency':>10s} {'energy':>9s} {'edge SSIM':>10s}")

    reference_edges = None
    for policy in ("gpu-baseline", "work-stealing", "QAWS-TS"):
        platform = (
            gpu_only_platform() if policy == "gpu-baseline" else jetson_nano_platform()
        )
        runtime = SHMTRuntime(platform, make_scheduler(policy))
        result = build_program(frame).run(runtime)
        edges = result.output("edges")
        if policy == "gpu-baseline":
            reference_edges = edges
        quality = ssim(reference_edges, edges)
        print(
            f"{policy:16s} {result.total_time * 1e3:8.2f} ms "
            f"{result.total_energy:7.3f} J {quality:10.4f}"
        )

    print()
    print("Work stealing is fastest but lets the Edge TPU touch critical")
    print("high-contrast regions; QAWS-TS keeps the edge map's SSIM near")
    print("the exact result at almost the same speed.")


if __name__ == "__main__":
    main()
