#!/usr/bin/env python
"""Policy explorer: sweep every scheduling policy on one kernel.

A small CLI for poking at the trade space: pick a benchmark kernel and a
problem size, and see latency, speedup, quality, energy, and work split
for every registered policy -- the row-level view behind Figures 6/7/10.

Run:  python examples/policy_explorer.py [kernel] [side]
      python examples/policy_explorer.py fft 1024
"""

import sys

from repro import (
    SHMTRuntime,
    gpu_only_platform,
    make_scheduler,
    scheduler_names,
)
from repro.experiments.common import platform_for
from repro.metrics import mape_percent
from repro.workloads import generate


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "srad"
    side = int(sys.argv[2]) if len(sys.argv) > 2 else 1024
    vector_kernels = ("blackscholes", "histogram")
    size = side * side if kernel in vector_kernels else (side, side)

    call = generate(kernel, size=size, seed=1)
    reference = call.spec.reference(call.data.astype("float64"), call.resolve_context())
    baseline = SHMTRuntime(gpu_only_platform(), make_scheduler("gpu-baseline")).execute(call)

    print(f"=== {kernel} @ {side}x{side}: every policy ===")
    print(
        f"{'policy':18s} {'latency':>10s} {'speedup':>8s} {'MAPE':>8s} "
        f"{'energy':>8s} {'steals':>7s}  work split"
    )
    for policy in scheduler_names():
        runtime = SHMTRuntime(platform_for(policy), make_scheduler(policy))
        report = runtime.execute(call)
        shares = " ".join(
            f"{cls}:{share:.0%}" for cls, share in sorted(report.work_shares.items())
        )
        print(
            f"{policy:18s} {report.makespan * 1e3:8.2f} ms "
            f"{report.speedup_over(baseline):7.2f}x "
            f"{mape_percent(reference, report.output):7.2f}% "
            f"{report.energy.total_joules:7.3f}J "
            f"{report.steal_count:7d}  {shares}"
        )


if __name__ == "__main__":
    main()
