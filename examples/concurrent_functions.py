#!/usr/bin/env python
"""Figure 1, executed: several functions sharing the devices at once.

The paper's Figure 1 contrasts (a) conventional execution, where each
function owns one device while the rest idle, with (c) SHMT, where every
function's HLOPs spread across all devices concurrently.  This example
builds a five-function analytics pass over one camera frame and runs it
three ways:

  * serial VOPs           -- one function at a time (still heterogeneous
                             inside each function),
  * concurrent batch      -- independent functions share the devices
                             (``SHMTRuntime.execute_batch``),
  * per-function devices  -- the conventional model: each function bound
                             to a single device class.

Run:  python examples/concurrent_functions.py
"""

from repro import Program, SHMTRuntime, VOPCall, jetson_nano_platform, make_scheduler
from repro.sim.gantt import render_gantt
from repro.workloads import generate


def build_program(frame):
    return (
        Program()
        .add("A-denoise", "Mean_Filter", frame)
        .add("B-edges", "Sobel", frame)
        .add("C-contrast", "Laplacian", frame)
        .add("D-spectrum", "DCT8x8", "A-denoise")
        .add("E-histogram", "reduce_hist256", "A-denoise")
    )


def main() -> None:
    frame = generate("sobel", size=(1024, 1024), seed=17).data
    runtime = SHMTRuntime(jetson_nano_platform(), make_scheduler("QAWS-TS"))
    program = build_program(frame)

    serial = program.run(runtime, concurrent=False)
    concurrent = program.run(runtime, concurrent=True)

    serial_time = serial.total_time
    concurrent_time = max(concurrent.reports[n].makespan for n in concurrent.order)

    print("=== Five-function frame analytics (1024x1024) ===")
    print(f"serial VOPs      : {serial_time * 1e3:7.2f} ms")
    print(f"concurrent batch : {concurrent_time * 1e3:7.2f} ms "
          f"({serial_time / concurrent_time:.2f}x from sharing the devices)")
    print()
    print("Dependency levels executed as concurrent batches:")
    for depth, level in enumerate(program.levels()):
        print(f"  level {depth}: {', '.join(s.name for s in level)}")
    print()
    print("Timeline of the first concurrent level "
          "(functions interleave on every device):")
    level_calls = [
        VOPCall(step.opcode, frame, label=step.name) for step in program.levels()[0]
    ]
    batch = runtime.execute_batch(level_calls)
    print(render_gantt(batch.trace, width=76))


if __name__ == "__main__":
    main()
