#!/usr/bin/env python
"""The virtual-device driver interface (paper Figure 3), in action.

The paper frames SHMT as one big virtual accelerator: software submits
VOP commands to a driver and collects completions from a queue.  This
example drives a frame-processing service that way -- submit a burst of
commands up front, then drain completions as they arrive -- including
waiting on one specific command out of order.

Run:  python examples/virtual_device.py
"""

from repro import SHMTRuntime, VOPCall, VirtualDevice, jetson_nano_platform, make_scheduler
from repro.workloads import generate


def main() -> None:
    runtime = SHMTRuntime(jetson_nano_platform(), make_scheduler("QAWS-TS"))
    device = VirtualDevice(runtime)
    frame = generate("sobel", size=(512, 512), seed=21).data

    print("=== Virtual SHMT device: submit / poll ===")
    handles = {
        "edges": device.submit(VOPCall("Sobel", frame, label="edges")),
        "smooth": device.submit(VOPCall("Mean_Filter", frame, label="smooth")),
        "spectrum": device.submit(VOPCall("DCT8x8", frame, label="spectrum")),
        "histogram": device.submit(VOPCall("reduce_hist256", frame.ravel(), label="histogram")),
    }
    print(f"submitted {device.pending} commands "
          f"(handles {[h.command_id for h in handles.values()]})")

    # Jump the queue: we need the histogram first (it gates exposure control).
    urgent = device.wait(handles["histogram"])
    print(f"\nwaited on {urgent.handle.label!r} first: "
          f"{int(urgent.output.sum()):,} pixels binned, "
          f"peak bin {int(urgent.output.max()):,}")

    # Drain everything else from the completion queue.
    print("\ndraining remaining completions:")
    for completion in device.poll():
        report = completion.report
        shares = ", ".join(
            f"{k}={v:.0%}" for k, v in sorted(report.work_shares.items())
        )
        print(f"  {completion.handle.label:<10s} {report.makespan * 1e3:6.2f} ms  [{shares}]")

    print(f"\ntotal simulated device time: {device.elapsed_simulated_seconds * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
