#!/usr/bin/env python
"""Three-tier heterogeneity: adding a DSP to the platform.

The paper's background (section 2.1) surveys DSPs as the third accelerator
family and notes SHMT "can easily extend the support to DSPs".  This
example runs the same kernel on:

  * the paper's prototype platform (CPU + GPU + Edge TPU), and
  * the DSP-extended platform (CPU + GPU + FP16 DSP + INT8 Edge TPU),

using the tiered top-K policy from section 3.5: top-K% of partitions to
the exact class, second-L% to the half-precision DSP, the rest free to
run anywhere (i.e. on the Edge TPU).

Run:  python examples/dsp_extension.py
"""

from repro import SHMTRuntime, gpu_only_platform, jetson_nano_platform, make_scheduler
from repro.core.schedulers.qaws import QAWS
from repro.devices import dsp_extended_platform
from repro.metrics import mape_percent
from repro.workloads import generate


def main() -> None:
    call = generate("laplacian", size=(1024, 1024), seed=13)
    reference = call.spec.reference(call.data.astype("float64"), call.resolve_context())
    baseline = SHMTRuntime(gpu_only_platform(), make_scheduler("gpu-baseline")).execute(call)

    runs = [
        ("prototype + QAWS-TS", jetson_nano_platform(), QAWS(policy="topk")),
        (
            "with DSP + tiered top-K",
            dsp_extended_platform(),
            QAWS(policy="topk", top_k_fraction=0.15, second_fraction=0.25),
        ),
    ]

    print("=== Laplacian 1024x1024: two-tier vs three-tier platform ===")
    print(f"{'platform':26s} {'speedup':>8s} {'MAPE':>8s}  work split")
    for label, platform, scheduler in runs:
        report = SHMTRuntime(platform, scheduler).execute(call)
        shares = " ".join(
            f"{cls}:{share:.0%}" for cls, share in sorted(report.work_shares.items())
        )
        print(
            f"{label:26s} {report.speedup_over(baseline):7.2f}x "
            f"{mape_percent(reference, report.output):7.2f}%  {shares}"
        )

    print()
    print("The DSP absorbs the moderately-critical partitions at FP16 --")
    print("more throughput than pinning them to the GPU, far less error")
    print("than letting the INT8 Edge TPU touch them.")


if __name__ == "__main__":
    main()
