#!/usr/bin/env python
"""Extending SHMT: register your own VOP and run it heterogeneously.

The paper's VOP set (Table 1) is explicitly extensible -- any operation
that fits one of the parallelization models can join.  This example adds a
"gamma correction" VOP (element-wise tone mapping, a staple of camera
pipelines), registers it with the kernel registry, and executes it across
the whole platform with quality control, no runtime changes needed.

Run:  python examples/custom_vop.py
"""

import numpy as np

from repro import SHMTRuntime, VOPCall, jetson_nano_platform, make_scheduler
from repro.kernels.registry import KernelSpec, ParallelModel, register_kernel
from repro.metrics import mape_percent
from repro.workloads.generator import heterogeneous_field

GAMMA = 2.2


def gamma_correct(block: np.ndarray, _ctx) -> np.ndarray:
    """Standard display gamma: out = in^(1/2.2) on normalized intensities."""
    return np.power(np.clip(block, 0.0, None), 1.0 / GAMMA).astype(block.dtype)


def gamma_reference(data: np.ndarray, _ctx) -> np.ndarray:
    return np.power(np.clip(data.astype(np.float64), 0.0, None), 1.0 / GAMMA)


GAMMA_SPEC = register_kernel(
    KernelSpec(
        name="gamma_correct",
        vop="gamma_correct",
        model=ParallelModel.VECTOR,
        reference=gamma_reference,
        compute=gamma_correct,
        description="display gamma correction (custom user VOP)",
    )
)


def main() -> None:
    rng = np.random.default_rng(5)
    # Intensities in [0, 1] with a few blown-out highlight regions.
    intensities = np.clip(
        0.4 + 0.1 * heterogeneous_field((1 << 21,), rng, spike_scale=8.0), 0.0, 4.0
    )
    call = VOPCall("gamma_correct", intensities)
    reference = gamma_reference(call.data, None)

    print("=== Custom VOP: gamma correction on 2M pixels ===")
    platform = jetson_nano_platform()
    for policy in ("work-stealing", "QAWS-TS"):
        report = SHMTRuntime(platform, make_scheduler(policy)).execute(call)
        shares = ", ".join(f"{k}={v:.0%}" for k, v in sorted(report.work_shares.items()))
        print(
            f"{policy:14s} latency {report.makespan * 1e3:7.2f} ms | "
            f"MAPE {mape_percent(reference, report.output):6.3f}% | {shares}"
        )
    print()
    print("No runtime changes: the registry entry is all a new VOP needs.")


if __name__ == "__main__":
    main()
