#!/usr/bin/env python
"""Quickstart: run one kernel under SHMT and see what you gain.

Offloads a Sobel edge-detection VOP to the simulated Jetson-Nano-class
platform (CPU + GPU + Edge TPU) under the paper's best policy (QAWS-TS),
and compares it with the conventional GPU-only baseline on latency,
energy, and result quality.

Run:  python examples/quickstart.py
"""

from repro import SHMTRuntime, gpu_only_platform, jetson_nano_platform, make_scheduler
from repro.metrics import mape_percent, ssim
from repro.workloads import generate


def main() -> None:
    # A 1024x1024 synthetic image with realistic high-contrast regions.
    call = generate("sobel", size=(1024, 1024), seed=7)

    # Conventional execution: the whole kernel on the GPU.
    baseline = SHMTRuntime(gpu_only_platform(), make_scheduler("gpu-baseline"))
    base_report = baseline.execute(call)

    # SHMT: the same VOP split into HLOPs across CPU + GPU + Edge TPU,
    # with quality-aware work stealing routing critical partitions to
    # exact devices.
    shmt = SHMTRuntime(jetson_nano_platform(), make_scheduler("QAWS-TS"))
    shmt_report = shmt.execute(call)

    reference = call.spec.reference(call.data.astype("float64"), call.resolve_context())

    print("=== SHMT quickstart: Sobel 1024x1024 ===")
    print(f"GPU baseline latency : {base_report.makespan * 1e3:8.2f} ms")
    print(f"SHMT (QAWS-TS)       : {shmt_report.makespan * 1e3:8.2f} ms")
    print(f"Speedup              : {shmt_report.speedup_over(base_report):8.2f}x")
    print()
    shares = ", ".join(f"{k}={v:.0%}" for k, v in sorted(shmt_report.work_shares.items()))
    print(f"Work split           : {shares}")
    print(f"HLOPs stolen         : {shmt_report.steal_count}")
    print(f"Comm overhead        : {shmt_report.communication_overhead:8.2%}")
    print()
    print(f"Baseline energy      : {base_report.energy.total_joules:8.4f} J")
    print(f"SHMT energy          : {shmt_report.energy.total_joules:8.4f} J "
          f"({shmt_report.energy.total_joules / base_report.energy.total_joules:.0%} of baseline)")
    print()
    print(f"SHMT result MAPE     : {mape_percent(reference, shmt_report.output):8.2f} %")
    print(f"SHMT result SSIM     : {ssim(reference, shmt_report.output):8.4f}")


if __name__ == "__main__":
    main()
