#!/usr/bin/env python
"""Observability smoke check: telemetry agrees with the reports it describes.

For every registered scheduling policy (clean run *and* chaos run under the
canned fault plan of ``chaos_check.py``), asserts that:

* the decision log's counters match the ``BatchReport`` exactly
  (steal + split decisions == ``steal_count``, retries, requeues, and one
  degrade decision per degraded fault event);
* the exported records validate against the ``repro.obs/v1`` schema;
* the decision log is deterministic: the same seed replays byte-identical;
* disabling observability leaves the report itself unchanged.

Run after any change to the runtime's telemetry hooks:

    PYTHONPATH=src python scripts/obs_check.py [policy ...]
    PYTHONPATH=src python scripts/obs_check.py --validate metrics.jsonl

Exits non-zero on any mismatch.
"""

from __future__ import annotations

import sys

from repro import (
    DecisionKind,
    DeviceDeath,
    FaultKind,
    FaultPlan,
    OutputCorruption,
    RuntimeConfig,
    SHMTRuntime,
    Straggler,
    TransientFaults,
    jetson_nano_platform,
    make_scheduler,
    scheduler_names,
)
from repro.core.partition import PartitionConfig
from repro.obs import to_records, validate_records
from repro.workloads import generate

# Single-device policies have no legal recovery target for a device death
# (same exemption as chaos_check.py).
SINGLE_DEVICE = {"gpu-baseline", "edge-tpu-only"}


def chaos_plan(kill_gpu: bool) -> FaultPlan:
    return FaultPlan(
        transient=(TransientFaults("*", probability=0.05),),
        deaths=(DeviceDeath("gpu0", at_time=5e-4),) if kill_gpu else (),
        stragglers=(Straggler("tpu0", slowdown=8.0, start=2e-4),),
        corruption=(OutputCorruption("cpu0", probability=0.3),),
    )


def _run(policy: str, plan):
    call = generate("sobel", size=(256, 256), seed=11)
    config = RuntimeConfig(
        partition=PartitionConfig(target_partitions=16),
        fault_plan=plan,
        observe=True,
    )
    runtime = SHMTRuntime(jetson_nano_platform(), make_scheduler(policy), config)
    return runtime.execute(call)


def check(policy: str, chaos: bool) -> bool:
    label = f"{policy} ({'chaos' if chaos else 'clean'})"
    plan = chaos_plan(kill_gpu=policy not in SINGLE_DEVICE) if chaos else None
    try:
        report = _run(policy, plan)
        metrics = report.metrics
        assert metrics is not None, "observe=True produced no metrics"
        counts = metrics.decision_counts
        steals = counts.get(DecisionKind.STEAL, 0) + counts.get(DecisionKind.SPLIT, 0)
        assert steals == report.steal_count, (
            f"steal+split decisions {steals} != steal_count {report.steal_count}"
        )
        retries = counts.get(DecisionKind.RETRY, 0)
        assert retries == report.retry_count, (
            f"retry decisions {retries} != retry_count {report.retry_count}"
        )
        requeues = counts.get(DecisionKind.REQUEUE, 0)
        assert requeues == report.requeue_count, (
            f"requeue decisions {requeues} != requeue_count {report.requeue_count}"
        )
        degraded_events = sum(
            1 for e in report.fault_events if e.kind is FaultKind.DEGRADED
        )
        degrades = counts.get(DecisionKind.DEGRADE, 0)
        assert degrades == degraded_events, (
            f"degrade decisions {degrades} != degraded fault events {degraded_events}"
        )
        assert len(metrics.fault_events) == len(report.fault_events), (
            "recorder fault log disagrees with the report's"
        )
        validate_records(to_records(metrics, meta={"policy": policy}))
        replay = _run(policy, plan)
        assert replay.metrics.decisions.to_dicts() == metrics.decisions.to_dicts(), (
            "decision log is not deterministic under a fixed seed"
        )
    except Exception as exc:  # noqa: BLE001 - report and keep sweeping
        print(f"  {label:<32} FAIL   {type(exc).__name__}: {exc}")
        return False
    print(
        f"  {label:<32} ok     decisions={len(metrics.decisions):<4d} "
        f"steals={report.steal_count:<3d} retries={report.retry_count:<3d} "
        f"requeues={report.requeue_count:<3d} faults={len(report.fault_events)}"
    )
    return True


def main() -> None:
    argv = sys.argv[1:]
    if argv and argv[0] == "--validate":
        if len(argv) != 2:
            print("usage: obs_check.py --validate FILE.jsonl")
            sys.exit(2)
        from repro.obs import validate_jsonl

        count = validate_jsonl(argv[1])
        print(f"{argv[1]}: {count} records valid against repro.obs/v1")
        return
    policies = argv or scheduler_names()
    print(f"obs check: {len(policies)} policies, clean + chaos, seeded replay")
    failures = [
        f"{p} ({mode})"
        for p in policies
        for mode, chaos in (("clean", False), ("chaos", True))
        if not check(p, chaos)
    ]
    if failures:
        print(f"\nFAILED: {', '.join(failures)}")
        sys.exit(1)
    print("\nall policies: telemetry matches reports")


if __name__ == "__main__":
    main()
