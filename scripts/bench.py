#!/usr/bin/env python
"""Wall-clock benchmark harness for the compute-backend subsystem.

Runs the experiment suite three times -- the ``serial`` backend with the
result cache off (the historical configuration), the ``pool`` backend
with the cross-run cache on (the PR 3 configuration), and ``pool`` with
cache *and* the HLOP fusion/batching pass (``--fuse``, PR 7) -- and
records wall-clock per experiment, per-leg totals, cache and fusion
statistics, and a ``repro.obs`` phase profile of a representative
observed run.  With ``--repeat N`` the three legs run as N paired
rounds and the reported speedups come from the best single round, so
both ends of every ratio are measured in the same machine-speed window
(per-round walls are kept in the record under ``rounds``).  The perf
trajectory lives in ``BENCH_pr3.json`` -> ``BENCH_pr7.json``.

Usage::

    PYTHONPATH=src python scripts/bench.py --quick                # measure
    PYTHONPATH=src python scripts/bench.py --quick --check BENCH_pr7.json

``--check`` compares the fresh measurement against a recorded baseline and
exits non-zero when

* the pool+cache leg is slower than the serial leg,
* the fused leg is slower than the un-fused pool leg (fusion must pay for
  itself), or
* either speedup ratio regressed by more than ``--tolerance`` (default
  10%) versus the baseline's ratio.  Ratios, not absolute seconds, so the
  gate is portable across machines of different speeds.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.core.partition import PartitionConfig
from repro.core.runtime import RuntimeConfig, SHMTRuntime
from repro.core.schedulers.base import make_scheduler
from repro.devices.platform import jetson_nano_platform
from repro.exec.cache import result_cache
from repro.exec.fuse import arena, fuse_stats, reset_fuse_stats
from repro.experiments.common import ExperimentSettings
from repro.experiments.runner import run_all
from repro.workloads.generator import generate

SCHEMA = "repro.bench/v1"


def _leg_settings(args, backend: str, cache: bool, fuse: bool) -> ExperimentSettings:
    settings = ExperimentSettings(seed=args.seed)
    if args.quick:
        settings.size = 512 * 512
    settings.runtime_config = RuntimeConfig(
        backend=backend,
        jobs=args.jobs,
        cache=cache,
        validate=args.validate,
        fuse=fuse,
    )
    return settings


def _phase_profile(
    backend: str, cache: bool, jobs, seed: int, validate: bool = False, fuse: bool = False
) -> dict:
    """Simulated per-(phase, resource) seconds of one observed QAWS-TS run."""
    config = RuntimeConfig(
        partition=PartitionConfig(target_partitions=16),
        observe=True,
        backend=backend,
        jobs=jobs,
        cache=cache,
        validate=validate,
        fuse=fuse,
    )
    runtime = SHMTRuntime(jetson_nano_platform(), make_scheduler("QAWS-TS"), config)
    report = runtime.execute(generate("sobel", size=(256, 256), seed=seed))
    return {
        f"{phase}/{resource}": {"seconds": stat.seconds, "count": stat.count}
        for (phase, resource), stat in sorted(report.metrics.phases.items())
    }


def _run_leg(args, name: str, backend: str, cache: bool, jobs, fuse: bool = False) -> dict:
    if cache:
        result_cache().clear()
    if fuse:
        reset_fuse_stats()
    settings = _leg_settings(args, backend, cache, fuse)
    start = time.time()
    timings = run_all(settings, out=io.StringIO(), jobs=jobs)
    wall = time.time() - start
    leg = {
        "backend": backend,
        "cache": cache,
        "fuse": fuse,
        "jobs": jobs,
        "wall_seconds": round(wall, 3),
        "experiments": {k: round(v, 3) for k, v in timings.items()},
    }
    if cache:
        leg["cache_stats"] = result_cache().stats.as_dict()
    if fuse:
        leg["fuse_stats"] = fuse_stats().as_dict()
        leg["arena_stats"] = arena().as_dict()
    print(
        f"  {name:<12} {wall:7.1f}s  "
        f"(backend={backend}, cache={cache}, fuse={fuse}, jobs={jobs})"
    )
    return leg


def measure(args) -> dict:
    print(f"benchmarking the {'quick ' if args.quick else ''}experiment suite:")
    # Default to the real core count: extra threads on a small box are
    # pure oversubscription and only add handoff/GIL noise to the legs.
    jobs = args.jobs or (os.cpu_count() or 1)
    # The fused leg measures cache+fusion at the machine's best worker
    # configuration: with a single worker the pool's thread handoff is
    # pure overhead, so fusion runs on the serial backend (identical
    # semantics -- FusingBackend wraps either).
    fuse_backend = "pool" if jobs > 1 else "serial"
    # Paired rounds: each round runs all three legs back-to-back, and each
    # speedup ratio is computed *within* its round, so both ends of the
    # ratio see the same machine-speed window.  (Taking each leg's min
    # across rounds instead lets a noisy box pair a lucky serial leg with
    # an unlucky fused one -- ratios from different windows are fiction.)
    rounds = []
    for index in range(max(1, args.repeat)):
        if index:
            print(f"  --- round {index + 1} ---")
        serial = _run_leg(args, "serial", "serial", cache=False, jobs=None)
        pool = _run_leg(args, "pool+cache", "pool", cache=True, jobs=jobs)
        fused = _run_leg(
            args, "cache+fuse", fuse_backend, cache=True, jobs=jobs, fuse=True
        )
        speedup = serial["wall_seconds"] / max(pool["wall_seconds"], 1e-9)
        fuse_speedup = serial["wall_seconds"] / max(fused["wall_seconds"], 1e-9)
        rounds.append(
            {
                "legs": {"serial": serial, "pool": pool, "fuse": fused},
                "speedup_pool_over_serial": round(speedup, 4),
                "speedup_fuse_over_serial": round(fuse_speedup, 4),
            }
        )
    best = max(rounds, key=lambda r: r["speedup_fuse_over_serial"])
    serial, pool, fused = (best["legs"][k] for k in ("serial", "pool", "fuse"))
    # The phase profiles are deterministic simulated-time attributions --
    # one per leg configuration, attached after the timed rounds.
    serial["phase_profile"] = _phase_profile(
        "serial", False, None, args.seed, args.validate
    )
    pool["phase_profile"] = _phase_profile(
        "pool", True, jobs, args.seed, args.validate
    )
    fused["phase_profile"] = _phase_profile(
        fuse_backend, True, jobs, args.seed, args.validate, fuse=True
    )
    print(f"  pool+cache speedup over serial: {best['speedup_pool_over_serial']:.2f}x")
    print(f"  cache+fuse speedup over serial: {best['speedup_fuse_over_serial']:.2f}x")
    return {
        "schema": SCHEMA,
        "pr": 7,
        "quick": bool(args.quick),
        "seed": args.seed,
        "repeat": max(1, args.repeat),
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "legs": {"serial": serial, "pool": pool, "fuse": fused},
        "rounds": [
            {
                "walls": {k: r["legs"][k]["wall_seconds"] for k in r["legs"]},
                "speedup_pool_over_serial": r["speedup_pool_over_serial"],
                "speedup_fuse_over_serial": r["speedup_fuse_over_serial"],
            }
            for r in rounds
        ],
        "speedup_pool_over_serial": best["speedup_pool_over_serial"],
        "speedup_fuse_over_serial": best["speedup_fuse_over_serial"],
    }


def check(record: dict, baseline: dict, tolerance: float) -> int:
    """Gate the fresh ``record`` against the recorded ``baseline``."""
    failures = []
    speedup = record["speedup_pool_over_serial"]
    if speedup < 1.0:
        failures.append(
            f"pool+cache leg is slower than serial (speedup {speedup:.2f}x < 1.0x)"
        )
    fuse_speedup = record.get("speedup_fuse_over_serial")
    if fuse_speedup is not None and fuse_speedup < speedup:
        failures.append(
            f"fusion leg is slower than the un-fused pool leg "
            f"({fuse_speedup:.2f}x < {speedup:.2f}x over serial)"
        )
    checked = []
    for key, fresh in (
        ("speedup_pool_over_serial", speedup),
        ("speedup_fuse_over_serial", fuse_speedup),
    ):
        base = baseline.get(key)
        if not base or fresh is None:
            continue
        checked.append(f"{key.split('_')[1]} {fresh:.2f}x (baseline {base:.2f}x)")
        floor = base * (1.0 - tolerance)
        if fresh < floor:
            failures.append(
                f"{key} regressed >{tolerance:.0%}: {fresh:.2f}x vs "
                f"baseline {base:.2f}x (floor {floor:.2f}x)"
            )
    for message in failures:
        print(f"BENCH REGRESSION: {message}", file=sys.stderr)
    if not failures:
        print(
            "bench check ok: " + "; ".join(checked)
            + f" (tolerance {tolerance:.0%})"
        )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced-size suite (what CI gates on)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="pool workers / runner fan-out (default: cpu count)")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run N paired rounds (all three legs back-to-back "
                             "per round) and report the best round's ratios; "
                             "pairing keeps both ends of each ratio in the "
                             "same machine-speed window")
    parser.add_argument("--out", default="BENCH_pr7.json", metavar="PATH",
                        help="where to write the fresh record")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="compare against a recorded baseline and gate")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed speedup-ratio regression vs baseline")
    parser.add_argument("--validate", action="store_true",
                        help="measure with the runtime invariant checker on "
                             "(repro.verify); off for the gated baseline")
    args = parser.parse_args()

    baseline = None
    if args.check:
        with open(args.check) as fh:  # read *before* --out may overwrite it
            baseline = json.load(fh)

    record = measure(args)
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"record written to {args.out}")

    if baseline is not None:
        return check(record, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
