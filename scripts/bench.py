#!/usr/bin/env python
"""Wall-clock benchmark harness for the compute-backend subsystem.

Runs the experiment suite four times -- the ``serial`` backend with the
result cache off (the historical configuration), the ``pool`` backend
with the cross-run cache on (the PR 3 configuration), cache *and* the
HLOP fusion/batching pass (``--fuse``, PR 7), and cache + fusion driven
through the latency-hiding overlap engine (``--overlap``, PR 8: one
wall-clock event loop interleaves every run and the fusion pass batches
*across* jobs) -- and records wall-clock per experiment, per-leg totals,
cache and fusion statistics, and a ``repro.obs`` phase profile of a
representative observed run.  With ``--repeat N`` the legs run as N
paired rounds and the reported speedups come from the best single
round, so both ends of every ratio are measured in the same
machine-speed window (per-round walls are kept in the record under
``rounds``).  A fifth, *simulated-time* leg (PR 9) runs the DAG
workloads under every DAG policy and records the best ready-schedule
makespan ratio over serial step-at-a-time execution
(``speedup_dag_over_serial``); simulated ratios are deterministic, so
they are computed once outside the paired rounds.  The perf trajectory
lives in ``BENCH_pr3.json`` -> ``BENCH_pr7.json`` -> ``BENCH_pr8.json``
-> ``BENCH_pr9.json``.

Usage::

    PYTHONPATH=src python scripts/bench.py --quick                # measure
    PYTHONPATH=src python scripts/bench.py --quick --check BENCH_pr8.json

``--check`` compares the fresh measurement against a recorded baseline and
exits non-zero when

* the pool+cache leg is slower than the serial leg,
* the fused leg is slower than the un-fused pool leg (fusion must pay for
  itself),
* the overlap leg is slower than the serial leg,
* the best DAG policy fails to beat serial step-at-a-time on simulated
  makespan, or
* any speedup ratio (pool, fuse, overlap, dag -- each over serial)
  regressed by more than ``--tolerance`` (default 10%) versus the
  baseline's ratio.  Ratios, not absolute seconds, so the gate is portable across
  machines of different speeds.  For gating, each fresh ratio is its own
  best across the paired rounds (still within-round pairings), so a
  single noisy round cannot fail a ratio it was not selected by.  A
  ratio that still misses its floor gets one drift-resistant retry: the
  records' min-wall ratios (min serial wall / min leg wall across
  rounds) are compared under the same tolerance, which factors out the
  serial leg's run-to-run drift that every paired ratio inherits.
"""

from __future__ import annotations

import argparse
import gc
import io
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.core.partition import PartitionConfig
from repro.core.runtime import RuntimeConfig, SHMTRuntime
from repro.core.schedulers.base import make_scheduler
from repro.devices.platform import jetson_nano_platform
from repro.exec.cache import result_cache
from repro.exec.fuse import arena, fuse_stats, reset_fuse_stats
from repro.experiments.common import ExperimentSettings
from repro.experiments.runner import run_all
from repro.workloads.generator import generate

SCHEMA = "repro.bench/v1"


def _leg_settings(
    args, backend: str, cache: bool, fuse: bool, overlap: bool = False
) -> ExperimentSettings:
    settings = ExperimentSettings(seed=args.seed)
    if args.quick:
        settings.size = 512 * 512
    settings.runtime_config = RuntimeConfig(
        backend=backend,
        jobs=args.jobs,
        cache=cache,
        validate=args.validate,
        fuse=fuse,
        overlap=overlap,
    )
    return settings


def _phase_profile(
    backend: str, cache: bool, jobs, seed: int, validate: bool = False, fuse: bool = False
) -> dict:
    """Simulated per-(phase, resource) seconds of one observed QAWS-TS run."""
    config = RuntimeConfig(
        partition=PartitionConfig(target_partitions=16),
        observe=True,
        backend=backend,
        jobs=jobs,
        cache=cache,
        validate=validate,
        fuse=fuse,
    )
    runtime = SHMTRuntime(jetson_nano_platform(), make_scheduler("QAWS-TS"), config)
    report = runtime.execute(generate("sobel", size=(256, 256), seed=seed))
    return {
        f"{phase}/{resource}": {"seconds": stat.seconds, "count": stat.count}
        for (phase, resource), stat in sorted(report.metrics.phases.items())
    }


def _run_leg(
    args,
    name: str,
    backend: str,
    cache: bool,
    jobs,
    fuse: bool = False,
    overlap: bool = False,
) -> dict:
    if cache:
        result_cache().clear()
    if fuse:
        reset_fuse_stats()
    settings = _leg_settings(args, backend, cache, fuse, overlap)
    # Collect the previous leg's garbage (dead engines, freed result-cache
    # entries) outside the timed region so one leg's allocation debris
    # does not bill the next leg's wall clock.
    gc.collect()
    start = time.time()
    timings = run_all(settings, out=io.StringIO(), jobs=jobs)
    wall = time.time() - start
    leg = {
        "backend": backend,
        "cache": cache,
        "fuse": fuse,
        "overlap": overlap,
        "jobs": jobs,
        # The worker count this leg actually ran with (``jobs: null``
        # means "no fan-out", i.e. one effective worker) -- recorded
        # per leg so the env block can keep the *logical* CPU count
        # without the two being conflated.
        "jobs_effective": jobs or 1,
        "wall_seconds": round(wall, 3),
        "experiments": {k: round(v, 3) for k, v in timings.items()},
    }
    if cache:
        leg["cache_stats"] = result_cache().stats.as_dict()
    if fuse:
        leg["fuse_stats"] = fuse_stats().as_dict()
        leg["arena_stats"] = arena().as_dict()
    print(
        f"  {name:<12} {wall:7.1f}s  "
        f"(backend={backend}, cache={cache}, fuse={fuse}, "
        f"overlap={overlap}, jobs={jobs})"
    )
    return leg


def _dag_leg(args) -> dict:
    """Simulated DAG scheduling leg: best ready policy vs serial.

    Everything here is simulated time (deterministic in the seed and
    sizes), so the ratios are exactly reproducible on any machine; only
    ``wall_seconds`` measures the harness itself.
    """
    from repro.core.graph import DAG_POLICIES
    from repro.workloads.dag import image_pipeline_graph, solver_graph

    config = RuntimeConfig(
        partition=PartitionConfig(target_partitions=16), seed=args.seed
    )
    runtime = SHMTRuntime(
        jetson_nano_platform(), make_scheduler("QAWS-TS"), config
    )
    side = 192 if args.quick else 256
    graphs = {
        "image-pipeline": image_pipeline_graph(side=side, seed=args.seed),
        "solver": solver_graph(side=side // 2, steps=4, seed=args.seed),
    }
    start = time.time()
    workloads = {}
    ratios = []
    for name, graph in graphs.items():
        serial = graph.run(runtime, schedule="serial", policy="step")
        policies = {}
        best_policy, best_time = None, float("inf")
        for policy in DAG_POLICIES:
            result = graph.run(runtime, schedule="ready", policy=policy)
            policies[policy] = {
                "ready_makespan": round(result.total_time, 9),
                "speedup_over_serial": round(
                    serial.total_time / max(result.total_time, 1e-12), 4
                ),
                "transfers_waived": result.transfers_waived,
                "fingerprints_derived": result.fingerprints_derived,
            }
            if result.total_time < best_time:
                best_policy, best_time = policy, result.total_time
        ratio = serial.total_time / max(best_time, 1e-12)
        ratios.append(ratio)
        workloads[name] = {
            "side": side if name == "image-pipeline" else side // 2,
            "serial_makespan": round(serial.total_time, 9),
            "best_policy": best_policy,
            "policies": policies,
            "speedup_over_serial": round(ratio, 4),
        }
    # Geometric mean across workloads: one headline that a single
    # workload cannot dominate.
    speedup = float(np.exp(np.mean(np.log(ratios))))
    wall = time.time() - start
    print(
        "  dag (simulated)       "
        + ", ".join(
            f"{name}: {w['best_policy']} {w['speedup_over_serial']:.3f}x"
            for name, w in workloads.items()
        )
        + f"  -> {speedup:.3f}x  ({wall:.1f}s)"
    )
    return {
        "simulated": True,
        "wall_seconds": round(wall, 3),
        "workloads": workloads,
        "speedup_dag_over_serial": round(speedup, 4),
    }


def measure(args) -> dict:
    print(f"benchmarking the {'quick ' if args.quick else ''}experiment suite:")
    # Default to the real core count: extra threads on a small box are
    # pure oversubscription and only add handoff/GIL noise to the legs.
    jobs = args.jobs or (os.cpu_count() or 1)
    # The fused leg measures cache+fusion at the machine's best worker
    # configuration: with a single worker the pool's thread handoff is
    # pure overhead, so fusion runs on the serial backend (identical
    # semantics -- FusingBackend wraps either).
    fuse_backend = "pool" if jobs > 1 else "serial"
    # Paired rounds: each round runs all three legs back-to-back, and each
    # speedup ratio is computed *within* its round, so both ends of the
    # ratio see the same machine-speed window.  (Taking each leg's min
    # across rounds instead lets a noisy box pair a lucky serial leg with
    # an unlucky fused one -- ratios from different windows are fiction.)
    rounds = []
    for index in range(max(1, args.repeat)):
        if index:
            print(f"  --- round {index + 1} ---")
        serial = _run_leg(args, "serial", "serial", cache=False, jobs=None)
        pool = _run_leg(args, "pool+cache", "pool", cache=True, jobs=jobs)
        fused = _run_leg(
            args, "cache+fuse", fuse_backend, cache=True, jobs=jobs, fuse=True
        )
        overlapped = _run_leg(
            args,
            "overlap+fuse",
            fuse_backend,
            cache=True,
            jobs=jobs,
            fuse=True,
            overlap=True,
        )
        speedup = serial["wall_seconds"] / max(pool["wall_seconds"], 1e-9)
        fuse_speedup = serial["wall_seconds"] / max(fused["wall_seconds"], 1e-9)
        overlap_speedup = serial["wall_seconds"] / max(
            overlapped["wall_seconds"], 1e-9
        )
        rounds.append(
            {
                "legs": {
                    "serial": serial,
                    "pool": pool,
                    "fuse": fused,
                    "overlap": overlapped,
                },
                "speedup_pool_over_serial": round(speedup, 4),
                "speedup_fuse_over_serial": round(fuse_speedup, 4),
                "speedup_overlap_over_serial": round(overlap_speedup, 4),
            }
        )
    best = max(rounds, key=lambda r: r["speedup_overlap_over_serial"])
    serial, pool, fused, overlapped = (
        best["legs"][k] for k in ("serial", "pool", "fuse", "overlap")
    )
    # The phase profiles are deterministic simulated-time attributions --
    # one per leg configuration, attached after the timed rounds.  The
    # overlap leg's profile equals the fused one: a single observed run
    # has no sibling jobs to overlap with, and overlap never changes the
    # simulated timeline anyway.
    serial["phase_profile"] = _phase_profile(
        "serial", False, None, args.seed, args.validate
    )
    pool["phase_profile"] = _phase_profile(
        "pool", True, jobs, args.seed, args.validate
    )
    fused["phase_profile"] = _phase_profile(
        fuse_backend, True, jobs, args.seed, args.validate, fuse=True
    )
    overlapped["phase_profile"] = fused["phase_profile"]
    dag = _dag_leg(args)
    print(f"  pool+cache speedup over serial: {best['speedup_pool_over_serial']:.2f}x")
    print(f"  cache+fuse speedup over serial: {best['speedup_fuse_over_serial']:.2f}x")
    print(
        f"  overlap+fuse speedup over serial: "
        f"{best['speedup_overlap_over_serial']:.2f}x"
    )
    print(
        f"  dag ready-schedule speedup over serial (simulated): "
        f"{dag['speedup_dag_over_serial']:.2f}x"
    )
    return {
        "schema": SCHEMA,
        "pr": 9,
        "quick": bool(args.quick),
        "seed": args.seed,
        "repeat": max(1, args.repeat),
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            # The *logical* CPU count of the measuring box.  Worker
            # counts actually used are per-leg (``jobs``/
            # ``jobs_effective`` in each leg record) -- a leg may run
            # fewer workers than the box has CPUs.
            "cpu_count_logical": os.cpu_count(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        #: The resolved default worker count the pool/fuse/overlap legs ran
        #: with this invocation (``--jobs`` or the logical CPU count).
        "jobs_resolved": jobs,
        "legs": {
            "serial": serial,
            "pool": pool,
            "fuse": fused,
            "overlap": overlapped,
            "dag": dag,
        },
        "rounds": [
            {
                "walls": {k: r["legs"][k]["wall_seconds"] for k in r["legs"]},
                "speedup_pool_over_serial": r["speedup_pool_over_serial"],
                "speedup_fuse_over_serial": r["speedup_fuse_over_serial"],
                "speedup_overlap_over_serial": r["speedup_overlap_over_serial"],
            }
            for r in rounds
        ],
        "speedup_pool_over_serial": best["speedup_pool_over_serial"],
        "speedup_fuse_over_serial": best["speedup_fuse_over_serial"],
        "speedup_overlap_over_serial": best["speedup_overlap_over_serial"],
        "speedup_dag_over_serial": dag["speedup_dag_over_serial"],
    }


def _best_ratio(record: dict, key: str):
    """The best value of ``key`` across the record's paired rounds.

    The headline ratios all come from the single best round (selected by
    the overlap ratio), but for *gating* each ratio independently takes
    its own best round: every ratio is still a within-round pairing, and
    the gate stops failing just because one noisy round dragged a ratio
    it was not selected by.  Falls back to the headline for old records.
    """
    rounds = record.get("rounds") or []
    values = [r[key] for r in rounds if r.get(key) is not None]
    if values:
        return max(values)
    return record.get(key)


#: Which leg each gated ratio's numerator wall comes from.
_LEG_FOR_RATIO = {
    "speedup_pool_over_serial": "pool",
    "speedup_fuse_over_serial": "fuse",
    "speedup_overlap_over_serial": "overlap",
}


def _minwall_ratio(record: dict, leg: str):
    """Ratio of minimum walls across rounds: min(serial) / min(``leg``).

    The minimum is the noise-robust wall-clock estimator (system noise
    only ever adds time), and each leg's own minimum across rounds drifts
    far less run-to-run than any single paired round -- the serial leg in
    particular can swing 20%+ between invocations on a loaded box, which
    every paired ratio inherits.  Used as the gate's fallback when the
    best paired round misses the floor.  Falls back to the single-leg
    walls for old one-round records; ``None`` when the leg never ran.
    """
    rounds = record.get("rounds") or []
    serial_walls = [
        r["walls"]["serial"]
        for r in rounds
        if r.get("walls", {}).get("serial")
    ]
    leg_walls = [
        r["walls"][leg] for r in rounds if r.get("walls", {}).get(leg)
    ]
    if serial_walls and leg_walls:
        return min(serial_walls) / min(leg_walls)
    legs = record.get("legs") or {}
    serial = (legs.get("serial") or {}).get("wall_seconds")
    wall = (legs.get(leg) or {}).get("wall_seconds")
    if serial and wall:
        return serial / wall
    return None


def check(record: dict, baseline: dict, tolerance: float) -> int:
    """Gate the fresh ``record`` against the recorded ``baseline``."""
    failures = []
    speedup = _best_ratio(record, "speedup_pool_over_serial")
    if speedup < 1.0:
        failures.append(
            f"pool+cache leg is slower than serial (speedup {speedup:.2f}x < 1.0x)"
        )
    fuse_speedup = _best_ratio(record, "speedup_fuse_over_serial")
    if fuse_speedup is not None and fuse_speedup < speedup:
        failures.append(
            f"fusion leg is slower than the un-fused pool leg "
            f"({fuse_speedup:.2f}x < {speedup:.2f}x over serial)"
        )
    overlap_speedup = _best_ratio(record, "speedup_overlap_over_serial")
    if overlap_speedup is not None and overlap_speedup < 1.0:
        failures.append(
            f"overlap leg is slower than serial "
            f"(speedup {overlap_speedup:.2f}x < 1.0x)"
        )
    dag_speedup = record.get("speedup_dag_over_serial")
    if dag_speedup is not None and dag_speedup < 1.0:
        failures.append(
            f"no DAG policy beats serial step-at-a-time on simulated "
            f"makespan (best {dag_speedup:.2f}x < 1.0x)"
        )
    checked = []
    for key, fresh in (
        ("speedup_pool_over_serial", speedup),
        ("speedup_fuse_over_serial", fuse_speedup),
        ("speedup_overlap_over_serial", overlap_speedup),
        ("speedup_dag_over_serial", dag_speedup),
    ):
        base = baseline.get(key)
        if not base or fresh is None:
            continue
        floor = base * (1.0 - tolerance)
        ok = fresh >= floor
        note = ""
        wall_leg = _LEG_FOR_RATIO.get(key)
        if not ok and wall_leg is not None:
            # Fallback estimator: the paired-round ratios inherit the
            # serial leg's run-to-run drift, so before failing compare
            # the drift-resistant min-wall ratios of both records under
            # the same tolerance.  (The simulated DAG ratio has no wall
            # legs and no drift, so it gets no fallback.)
            robust_fresh = _minwall_ratio(record, wall_leg)
            robust_base = _minwall_ratio(baseline, wall_leg)
            if robust_fresh is not None and robust_base:
                ok = robust_fresh >= robust_base * (1.0 - tolerance)
                if ok:
                    note = (
                        f", passed on min-wall ratio {robust_fresh:.2f}x "
                        f"vs baseline {robust_base:.2f}x"
                    )
        checked.append(
            f"{key.split('_')[1]} {fresh:.2f}x (baseline {base:.2f}x{note})"
        )
        if not ok:
            failures.append(
                f"{key} regressed >{tolerance:.0%}: {fresh:.2f}x vs "
                f"baseline {base:.2f}x (floor {floor:.2f}x; min-wall "
                f"fallback also below its floor)"
            )
    for message in failures:
        print(f"BENCH REGRESSION: {message}", file=sys.stderr)
    if not failures:
        print(
            "bench check ok: " + "; ".join(checked)
            + f" (tolerance {tolerance:.0%})"
        )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced-size suite (what CI gates on)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="pool workers / runner fan-out (default: cpu count)")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run N paired rounds (all four legs back-to-back "
                             "per round) and report the best round's ratios; "
                             "pairing keeps both ends of each ratio in the "
                             "same machine-speed window")
    parser.add_argument("--out", default="BENCH_pr9.json", metavar="PATH",
                        help="where to write the fresh record")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="compare against a recorded baseline and gate")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed speedup-ratio regression vs baseline")
    parser.add_argument("--validate", action="store_true",
                        help="measure with the runtime invariant checker on "
                             "(repro.verify); off for the gated baseline")
    args = parser.parse_args()

    baseline = None
    if args.check:
        with open(args.check) as fh:  # read *before* --out may overwrite it
            baseline = json.load(fh)

    record = measure(args)
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"record written to {args.out}")

    if baseline is not None:
        return check(record, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
