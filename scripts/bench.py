#!/usr/bin/env python
"""Wall-clock benchmark harness for the compute-backend subsystem (PR 3).

Runs the experiment suite twice -- once on the ``serial`` backend with the
result cache off (the historical configuration) and once on the ``pool``
backend with the cross-run cache on -- and records wall-clock per
experiment, per-leg totals, cache statistics, and a ``repro.obs`` phase
profile of a representative observed run.  The record is the first point
of the perf trajectory (``BENCH_pr3.json``).

Usage::

    PYTHONPATH=src python scripts/bench.py --quick                # measure
    PYTHONPATH=src python scripts/bench.py --quick --check BENCH_pr3.json

``--check`` compares the fresh measurement against a recorded baseline and
exits non-zero when

* the pool+cache leg is slower than the serial leg (the tentpole's
  acceptance bar), or
* the pool-over-serial speedup ratio regressed by more than ``--tolerance``
  (default 20%) versus the baseline's ratio.  Ratios, not absolute
  seconds, so the gate is portable across machines of different speeds.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.core.partition import PartitionConfig
from repro.core.runtime import RuntimeConfig, SHMTRuntime
from repro.core.schedulers.base import make_scheduler
from repro.devices.platform import jetson_nano_platform
from repro.exec.cache import result_cache
from repro.experiments.common import ExperimentSettings
from repro.experiments.runner import run_all
from repro.workloads.generator import generate

SCHEMA = "repro.bench/v1"


def _leg_settings(args, backend: str, cache: bool) -> ExperimentSettings:
    settings = ExperimentSettings(seed=args.seed)
    if args.quick:
        settings.size = 512 * 512
    settings.runtime_config = RuntimeConfig(
        backend=backend, jobs=args.jobs, cache=cache, validate=args.validate
    )
    return settings


def _phase_profile(backend: str, cache: bool, jobs, seed: int, validate: bool = False) -> dict:
    """Simulated per-(phase, resource) seconds of one observed QAWS-TS run."""
    config = RuntimeConfig(
        partition=PartitionConfig(target_partitions=16),
        observe=True,
        backend=backend,
        jobs=jobs,
        cache=cache,
        validate=validate,
    )
    runtime = SHMTRuntime(jetson_nano_platform(), make_scheduler("QAWS-TS"), config)
    report = runtime.execute(generate("sobel", size=(256, 256), seed=seed))
    return {
        f"{phase}/{resource}": {"seconds": stat.seconds, "count": stat.count}
        for (phase, resource), stat in sorted(report.metrics.phases.items())
    }


def _run_leg(args, name: str, backend: str, cache: bool, jobs) -> dict:
    if cache:
        result_cache().clear()
    settings = _leg_settings(args, backend, cache)
    start = time.time()
    timings = run_all(settings, out=io.StringIO(), jobs=jobs)
    wall = time.time() - start
    leg = {
        "backend": backend,
        "cache": cache,
        "jobs": jobs,
        "wall_seconds": round(wall, 3),
        "experiments": {k: round(v, 3) for k, v in timings.items()},
        "phase_profile": _phase_profile(backend, cache, jobs, args.seed, args.validate),
    }
    if cache:
        leg["cache_stats"] = result_cache().stats.as_dict()
    print(f"  {name:<12} {wall:7.1f}s  (backend={backend}, cache={cache}, jobs={jobs})")
    return leg


def measure(args) -> dict:
    print(f"benchmarking the {'quick ' if args.quick else ''}experiment suite:")
    serial = _run_leg(args, "serial", "serial", cache=False, jobs=None)
    jobs = args.jobs or max(2, os.cpu_count() or 1)
    pool = _run_leg(args, "pool+cache", "pool", cache=True, jobs=jobs)
    speedup = serial["wall_seconds"] / max(pool["wall_seconds"], 1e-9)
    print(f"  pool+cache speedup over serial: {speedup:.2f}x")
    return {
        "schema": SCHEMA,
        "pr": 3,
        "quick": bool(args.quick),
        "seed": args.seed,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "legs": {"serial": serial, "pool": pool},
        "speedup_pool_over_serial": round(speedup, 4),
    }


def check(record: dict, baseline: dict, tolerance: float) -> int:
    """Gate the fresh ``record`` against the recorded ``baseline``."""
    failures = []
    speedup = record["speedup_pool_over_serial"]
    if speedup < 1.0:
        failures.append(
            f"pool+cache leg is slower than serial (speedup {speedup:.2f}x < 1.0x)"
        )
    base_speedup = baseline.get("speedup_pool_over_serial")
    if base_speedup:
        floor = base_speedup * (1.0 - tolerance)
        if speedup < floor:
            failures.append(
                f"speedup regressed >{tolerance:.0%}: {speedup:.2f}x vs "
                f"baseline {base_speedup:.2f}x (floor {floor:.2f}x)"
            )
    for message in failures:
        print(f"BENCH REGRESSION: {message}", file=sys.stderr)
    if not failures:
        print(
            f"bench check ok: speedup {speedup:.2f}x "
            f"(baseline {base_speedup:.2f}x, tolerance {tolerance:.0%})"
        )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced-size suite (what CI gates on)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="pool workers / runner fan-out (default: cpu count)")
    parser.add_argument("--out", default="BENCH_pr3.json", metavar="PATH",
                        help="where to write the fresh record")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="compare against a recorded baseline and gate")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed speedup-ratio regression vs baseline")
    parser.add_argument("--validate", action="store_true",
                        help="measure with the runtime invariant checker on "
                             "(repro.verify); off for the gated baseline")
    args = parser.parse_args()

    baseline = None
    if args.check:
        with open(args.check) as fh:  # read *before* --out may overwrite it
            baseline = json.load(fh)

    record = measure(args)
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"record written to {args.out}")

    if baseline is not None:
        return check(record, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
