#!/usr/bin/env python
"""DAG check: schedule/policy equivalence plus a scheduling-win assertion.

The quick suite (what CI runs) asserts, in order:

1. **Schedule/policy equivalence** -- for every DAG policy, the serial
   and ready-set schedules produce bit-identical per-step outputs, and on
   the all-exact platform the policies agree with each other (see
   :func:`repro.verify.differential.check_dag_equivalence`).
2. **Chaos equivalence** -- the same, with a fault plan killing the GPU
   while DAG steps are in flight; recovery must requeue identically in
   both schedules.  The run is audited to confirm the death actually
   fired and migrated work (a vacuous chaos check counts as failure).
3. **Scheduling win** -- on the image pipeline, the best DAG policy under
   the ready schedule must beat serial step-at-a-time on makespan, and
   every composed timeline must satisfy
   ``total_time <= sum_of_step_times``.

Usage::

    PYTHONPATH=src python scripts/dag_check.py --quick
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.graph import DAG_POLICIES
from repro.core.partition import PartitionConfig
from repro.core.runtime import RuntimeConfig, SHMTRuntime
from repro.core.schedulers.base import make_scheduler
from repro.devices.platform import jetson_nano_platform
from repro.faults.plan import DeviceDeath, FaultPlan
from repro.verify.differential import check_dag_equivalence
from repro.workloads.dag import image_pipeline_graph, solver_graph

#: Early enough that the GPU still holds queued work when it dies.
CHAOS_PLAN = FaultPlan(deaths=(DeviceDeath("gpu0", at_time=1e-5),))


def _runtime(fault_plan=None, seed: int = 7) -> SHMTRuntime:
    config = RuntimeConfig(
        partition=PartitionConfig(target_partitions=16),
        seed=seed,
        fault_plan=fault_plan,
    )
    return SHMTRuntime(jetson_nano_platform(), make_scheduler("QAWS-TS"), config)


def chaos_audit(side: int, seed: int) -> list:
    """The chaos plan must actually fire and migrate work."""
    failures = []
    result = image_pipeline_graph(side=side, seed=seed).run(
        _runtime(fault_plan=CHAOS_PLAN, seed=seed),
        schedule="ready",
        policy="partition",
    )
    if not all(result.reports[n].fault_events for n in result.order):
        failures.append(
            "chaos audit: the device death never fired inside a step run "
            "(the chaos equivalence check is vacuous)"
        )
    if sum(result.reports[n].requeue_count for n in result.order) == 0:
        failures.append(
            "chaos audit: no HLOP was requeued off the dead device "
            "(recovery never engaged)"
        )
    if result.fingerprints_derived != 0:
        failures.append(
            "chaos audit: provenance fingerprints were derived under an "
            "active fault plan (unsound: faults may corrupt intermediates)"
        )
    return failures


def scheduling_win(side: int, seed: int) -> list:
    """Some DAG policy under the ready schedule must beat serial."""
    failures = []
    graphs = (
        ("image-pipeline", image_pipeline_graph(side=side, seed=seed)),
        ("solver", solver_graph(side=side, steps=4, seed=seed)),
    )
    for name, graph in graphs:
        runtime = _runtime(seed=seed)
        serial = graph.run(runtime, schedule="serial", policy="step")
        best_policy, best_time = None, float("inf")
        for policy in DAG_POLICIES:
            result = graph.run(runtime, schedule="ready", policy=policy)
            if result.total_time > result.sum_of_step_times + 1e-12:
                failures.append(
                    f"{name}/{policy}: composed total_time "
                    f"{result.total_time:.6f}s exceeds sum_of_step_times "
                    f"{result.sum_of_step_times:.6f}s (timeline accounting bug)"
                )
            if result.total_time < best_time:
                best_policy, best_time = policy, result.total_time
        if best_time >= serial.total_time:
            failures.append(
                f"{name}: no DAG policy beat serial step-at-a-time "
                f"(best {best_policy} {best_time * 1e3:.3f} ms vs serial "
                f"{serial.total_time * 1e3:.3f} ms)"
            )
        else:
            print(
                f"  {name}: {best_policy} ready {best_time * 1e3:.3f} ms vs "
                f"serial {serial.total_time * 1e3:.3f} ms "
                f"({serial.total_time / best_time:.3f}x)"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="the CI suite (also the default)")
    parser.add_argument("--side", type=int, default=96,
                        help="equivalence-sweep problem side length")
    parser.add_argument("--win-side", type=int, default=192,
                        help="scheduling-win problem side length")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    start = time.time()
    failures = []

    print("dag check: schedule/policy differential equivalence")
    failures += check_dag_equivalence(side=args.side, seed=args.seed)

    print("dag check: chaos equivalence (GPU dies mid-DAG)")
    failures += check_dag_equivalence(
        side=args.side, seed=args.seed, fault_plan=CHAOS_PLAN
    )
    failures += chaos_audit(args.side, args.seed)

    print("dag check: scheduling win (ready DAG vs serial step-at-a-time)")
    failures += scheduling_win(args.win_side, args.seed)

    wall = time.time() - start
    if failures:
        print(f"\ndag check FAILED ({len(failures)} problem(s), {wall:.1f}s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"dag check ok ({wall:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
