#!/usr/bin/env python
"""Verification check: differential sweep, fuzzer smoke, and fixture self-test.

The quick suite (what CI runs) asserts, in order:

1. **Policy equivalence** -- exact-device policies produce bit-identical
   outputs per kernel (see :mod:`repro.verify.differential`).
2. **Shuffle invariance** -- the quantized path's output is independent of
   HLOP execution order.
3. **Fuse equivalence** -- runs with the fusion/batching pass enabled are
   bit-identical (outputs *and* makespans) to unfused runs, across exact
   policies and the mixed-platform quantized path.
4. **Clean validated sweep** -- every registered policy runs every kernel
   of the differential grid under full invariant checking
   (``RuntimeConfig(validate=True)``), fault-free and under the chaos
   fault plan, without a single violation.
5. **Fuzzer smoke** -- a seeded fuzzing session finds no failures.
6. **Fixture self-test** -- each seeded invariant-violation fixture
   (double-aggregate, clock step back, overlapping tile, poisoned cache
   entry) is actually *caught* by the checker.  A fixture slipping through
   silently means the checker rotted.

Usage::

    PYTHONPATH=src python scripts/verify_check.py --quick
    PYTHONPATH=src python scripts/verify_check.py --inject overlap-tile

``--inject NAME`` activates one fixture and runs the canned validated run
*without* the self-test inversion: the injected violation must surface and
the script exits non-zero -- the end-to-end proof that ``--validate``
turns seeded bugs into failing runs.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (
    DeviceDeath,
    FaultPlan,
    OutputCorruption,
    RuntimeConfig,
    SHMTRuntime,
    Straggler,
    TransientFaults,
    jetson_nano_platform,
    make_scheduler,
    scheduler_names,
)
from repro.core.partition import Partition, PartitionConfig
from repro.core import runtime as runtime_module
from repro.exec.cache import CacheIntegrityError, result_cache
from repro.verify.differential import (
    DEFAULT_KERNELS,
    check_fuse_equivalence,
    check_overlap_equivalence,
    check_policy_equivalence,
    check_shuffle_invariance,
)
from repro.verify.fuzz import fuzz
from repro.verify.invariants import InvariantViolation
from repro.workloads import generate

SINGLE_DEVICE = {"gpu-baseline", "edge-tpu-only", "sw-pipelining"}


def _chaos_plan(kill_gpu: bool) -> FaultPlan:
    return FaultPlan(
        transient=(TransientFaults("*", probability=0.05),),
        deaths=(DeviceDeath("gpu0", at_time=5e-4),) if kill_gpu else (),
        stragglers=(Straggler("tpu0", slowdown=8.0, start=2e-4),),
        corruption=(OutputCorruption("cpu0", probability=0.3),),
    )


def _validated_config(fault_plan=None, seed: int = 7) -> RuntimeConfig:
    return RuntimeConfig(
        partition=PartitionConfig(target_partitions=16),
        seed=seed,
        validate=True,
        fault_plan=fault_plan,
    )


def clean_validated_sweep() -> list:
    """All policies x all grid kernels, fault-free and under chaos."""
    failures = []
    for policy in scheduler_names():
        for kernel, size in DEFAULT_KERNELS:
            for plan in (None, _chaos_plan(kill_gpu=policy not in SINGLE_DEVICE)):
                label = f"{policy}/{kernel}" + ("/chaos" if plan else "")
                try:
                    runtime = SHMTRuntime(
                        jetson_nano_platform(),
                        make_scheduler(policy),
                        _validated_config(fault_plan=plan, seed=11),
                    )
                    runtime.execute(generate(kernel, size=size, seed=11))
                except Exception as error:  # noqa: BLE001 - sweep and report
                    failures.append(f"{label}: {type(error).__name__}: {error}")
    return failures


# ------------------------------------------------------ injection fixtures
#
# Each fixture is a context manager that seeds one concrete bug into the
# runtime (or cache).  Inside the context, the canned validated run MUST
# raise InvariantViolation / CacheIntegrityError naming the invariant.


@contextlib.contextmanager
def _fixture_double_aggregate():
    """Aggregate the first HLOP of every unit twice."""
    original = runtime_module._BatchRun._assemble_output

    def patched(self, unit):
        out = original(self, unit)
        if self.check is not None and unit.hlops:
            first = unit.hlops[0]
            self.check.on_aggregate(
                first.hlop_id, unit.index, "host", unit.finish_time
            )
        return out

    runtime_module._BatchRun._assemble_output = patched
    try:
        yield
    finally:
        runtime_module._BatchRun._assemble_output = original


@contextlib.contextmanager
def _fixture_clock_step_back():
    """Feed the checker a completion whose clock runs backwards."""
    original = runtime_module._BatchRun._on_complete

    def patched(self, state, hlop, start, finish, handle, **kwargs):
        original(self, state, hlop, start, finish, handle, **kwargs)
        if self.check is not None:
            self.check.observe_clock(finish - 1.0, state.device.name)

    runtime_module._BatchRun._on_complete = patched
    try:
        yield
    finally:
        runtime_module._BatchRun._on_complete = original


@contextlib.contextmanager
def _fixture_overlap_tile():
    """Extend one partition's output slice into its neighbour's."""
    original = runtime_module.plan_partitions

    def patched(spec, shape, config=None):
        partitions = original(spec, shape, config)
        if len(partitions) < 2:
            return partitions
        victim = partitions[1]
        rows = victim.out_slices[0]
        grown = slice(rows.start - 1, rows.stop)  # one row of overlap
        partitions[1] = Partition(
            index=victim.index,
            n_items=victim.n_items,
            in_slices=(slice(victim.in_slices[0].start - 1, victim.in_slices[0].stop),)
            + victim.in_slices[1:],
            out_slices=(grown,) + victim.out_slices[1:],
        )
        return partitions

    runtime_module.plan_partitions = patched
    try:
        yield
    finally:
        runtime_module.plan_partitions = original


@contextlib.contextmanager
def _fixture_cache_poison():
    """Flip bits in a stored cache entry after its fingerprint was taken."""
    cache = result_cache()
    cache.clear()
    config = RuntimeConfig(
        partition=PartitionConfig(target_partitions=16),
        seed=7,
        validate=True,
        cache=True,
    )
    runtime = SHMTRuntime(jetson_nano_platform(), make_scheduler("QAWS-TS"), config)
    runtime.execute(generate("fft", size=(128, 128), seed=7))
    with cache._lock:
        key = next(iter(cache._entries))
        entry = cache._entries[key]
    entry.flags.writeable = True
    try:
        entry[(0,) * entry.ndim] += 1.0
    finally:
        entry.flags.writeable = False
    try:
        yield
    finally:
        cache.clear()


FIXTURES = {
    "double-aggregate": (_fixture_double_aggregate, "hlop-conservation"),
    "clock-step-back": (_fixture_clock_step_back, "clock-monotonic"),
    "overlap-tile": (_fixture_overlap_tile, "tiling-coverage"),
    "cache-poison": (_fixture_cache_poison, "fingerprint"),
}


def _canned_run(name: str) -> None:
    """The validated run every fixture is injected into."""
    cache = name == "cache-poison"
    config = RuntimeConfig(
        partition=PartitionConfig(target_partitions=16),
        seed=7,
        validate=True,
        cache=cache,
    )
    runtime = SHMTRuntime(jetson_nano_platform(), make_scheduler("QAWS-TS"), config)
    runtime.execute(generate("fft", size=(128, 128), seed=7))


def fixture_self_test() -> list:
    """Every fixture must be caught; returns failure descriptions."""
    failures = []
    for name, (fixture, expected) in FIXTURES.items():
        try:
            with fixture():
                _canned_run(name)
        except (InvariantViolation, CacheIntegrityError) as caught:
            if expected not in str(caught):
                failures.append(
                    f"fixture {name}: caught, but the violation does not name "
                    f"{expected!r}: {caught}"
                )
        except Exception as error:  # noqa: BLE001 - wrong failure mode
            failures.append(
                f"fixture {name}: raised {type(error).__name__} instead of an "
                f"invariant violation: {error}"
            )
        else:
            failures.append(
                f"fixture {name}: the seeded violation was NOT caught "
                "(checker regression)"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="the CI suite (also the default)")
    parser.add_argument("--fuzz-cases", type=int, default=40,
                        help="fuzzer smoke session size")
    parser.add_argument("--fuzz-seed", type=int, default=0)
    parser.add_argument("--inject", choices=sorted(FIXTURES),
                        help="activate one violation fixture and run; the "
                             "injected violation must surface (exit non-zero)")
    args = parser.parse_args()

    if args.inject:
        fixture, _ = FIXTURES[args.inject]
        print(f"verify check: running with injected fixture {args.inject!r}")
        with fixture():
            _canned_run(args.inject)  # must raise -> traceback, exit != 0
        print("ERROR: the injected violation was not detected", file=sys.stderr)
        return 1

    start = time.time()
    failures = []

    print("verify check: exact-policy differential equivalence")
    failures += check_policy_equivalence()

    print("verify check: quantized-path shuffle invariance")
    failures += check_shuffle_invariance()

    print("verify check: fused-vs-unfused differential equivalence")
    failures += check_fuse_equivalence()

    print("verify check: overlapped-vs-sequential differential equivalence "
          "(plain, fused, chaos)")
    failures += check_overlap_equivalence()
    failures += check_overlap_equivalence(fuse=True)
    failures += check_overlap_equivalence(fault_plan=_chaos_plan(kill_gpu=False))

    print(
        f"verify check: clean validated sweep "
        f"({len(scheduler_names())} policies x {len(DEFAULT_KERNELS)} kernels, "
        "fault-free + chaos)"
    )
    failures += clean_validated_sweep()

    print(f"verify check: fuzzer smoke ({args.fuzz_cases} cases, "
          f"seed {args.fuzz_seed})")
    failures += [
        f"fuzz: {case}: {message}"
        for case, message in fuzz(args.fuzz_cases, args.fuzz_seed)
    ]

    print(f"verify check: fixture self-test ({len(FIXTURES)} seeded violations)")
    failures += fixture_self_test()

    wall = time.time() - start
    if failures:
        print(f"\nverify check FAILED ({len(failures)} problem(s), {wall:.1f}s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"verify check ok ({wall:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
