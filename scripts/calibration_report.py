#!/usr/bin/env python
"""Calibration report: paper-vs-measured for the headline experiments.

Run after any change to the performance model, NPU surrogate, or
schedulers.  Prints per-kernel speedup (Figure 6 columns) and MAPE
(Figure 7 columns) against the paper's numbers so calibration drift is
visible at a glance.

Usage: python scripts/calibration_report.py [kernel ...]
"""

from __future__ import annotations

import sys

from repro import SHMTRuntime, gpu_only_platform, jetson_nano_platform, make_scheduler
from repro.devices import EdgeTPUDevice, Platform
from repro.devices.perf_model import PAPER_TARGETS
from repro.metrics import geometric_mean, mape_percent
from repro.workloads import generate

from repro.paperdata import FIG6_SPEEDUP, FIG7_MAPE

PAPER_TPU_MAPE = FIG7_MAPE["edge-tpu-only"]
PAPER_WS_MAPE = FIG7_MAPE["work-stealing"]
PAPER_TS_MAPE = FIG7_MAPE["QAWS-TS"]
PAPER_TS_SPEEDUP = FIG6_SPEEDUP["QAWS-TS"]


def main() -> None:
    kernels = sys.argv[1:] or list(PAPER_TARGETS)
    nano = jetson_nano_platform()
    gpu = gpu_only_platform()
    tpu_platform = Platform(devices=[EdgeTPUDevice()])
    rows = []
    for kernel in kernels:
        call = generate(kernel)
        spec = call.spec
        ref = spec.reference(call.data.astype("float64"), call.resolve_context())
        base = SHMTRuntime(gpu, make_scheduler("gpu-baseline")).execute(call)
        tpu = SHMTRuntime(tpu_platform, make_scheduler("edge-tpu-only")).execute(call)
        ws = SHMTRuntime(nano, make_scheduler("work-stealing")).execute(call)
        ts = SHMTRuntime(nano, make_scheduler("QAWS-TS")).execute(call)
        orc = SHMTRuntime(nano, make_scheduler("oracle")).execute(call)
        rows.append(
            dict(
                kernel=kernel,
                ws_spd=base.makespan / ws.makespan,
                ts_spd=base.makespan / ts.makespan,
                tpu_mape=mape_percent(ref, tpu.output),
                ws_mape=mape_percent(ref, ws.output),
                ts_mape=mape_percent(ref, ts.output),
                orc_mape=mape_percent(ref, orc.output),
            )
        )
    header = (
        f"{'kernel':13s} {'WSspd':>6s}/{ 'paper':>5s} {'TSspd':>6s}/{'paper':>5s} "
        f"{'TPUmape':>8s}/{'paper':>6s} {'WSmape':>7s}/{'paper':>6s} "
        f"{'TSmape':>7s}/{'paper':>6s} {'oracle':>7s}"
    )
    print(header)
    for r in rows:
        k = r["kernel"]
        print(
            f"{k:13s} {r['ws_spd']:6.2f}/{PAPER_TARGETS[k]['ws']:5.2f} "
            f"{r['ts_spd']:6.2f}/{PAPER_TS_SPEEDUP[k]:5.2f} "
            f"{r['tpu_mape']:8.2f}/{PAPER_TPU_MAPE[k]:6.2f} "
            f"{r['ws_mape']:7.2f}/{PAPER_WS_MAPE[k]:6.2f} "
            f"{r['ts_mape']:7.2f}/{PAPER_TS_MAPE[k]:6.2f} "
            f"{r['orc_mape']:7.2f}"
        )
    if len(rows) == len(PAPER_TARGETS):
        print(
            f"GMEAN ws_spd {geometric_mean([r['ws_spd'] for r in rows]):.2f} (paper 2.07)  "
            f"ts_spd {geometric_mean([r['ts_spd'] for r in rows]):.2f} (paper 1.95)"
        )


if __name__ == "__main__":
    main()
