#!/usr/bin/env python
"""Soak check for the serving layer (``repro.serve``).

Drives a live :class:`ShmtService` through the failure modes the layer
exists to absorb, and audits the accounting afterwards:

* **Stage A -- overload (open loop)**: jobs submitted as fast as possible
  into a small shed-policy queue under a chaos fault plan (transient
  faults, a straggler, output corruption), with mixed QoS classes,
  tenants (one capped), and a slice of unmeetable deadlines.  Every job
  must land in a terminal state, and the service's metrics must account
  for every submitted/shed/rejected/cancelled job exactly.
* **Stage B -- closed loop**: submitters block on queue space
  (backpressure) until every job completes.
* **Stage C -- kill-and-resume drill**: a checkpointing service is killed
  mid-soak at an HLOP boundary, resumed from the journal, and the
  resumed results must be *bit-identical* (fingerprint-equal) to an
  uninterrupted reference run -- zero lost jobs, zero duplicated
  journal records.
* **Stage D -- breaker drill**: one device's breaker is forced open; jobs
  must complete on the surviving devices; after the cooldown the breaker
  must walk OPEN -> HALF_OPEN -> CLOSED on probe successes.

Run::

    PYTHONPATH=src python scripts/soak_check.py --quick [--validate]

``--quick`` sizes the soak for CI (>= 200 jobs total); the default is a
longer pass.  ``--validate`` additionally runs the runtime invariant
checker (:mod:`repro.verify`) inside every job.  Exits non-zero on any
audit failure.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from collections import Counter

from repro import FaultPlan, OutputCorruption, Straggler, TransientFaults
from repro.errors import AdmissionRejected, ServiceStopped
from repro.serve import (
    AdmissionConfig,
    BreakerConfig,
    BreakerState,
    JobSpec,
    JobState,
    ServiceConfig,
    ShmtService,
    load_checkpoint,
)

KERNELS = ("sobel", "laplacian", "mean_filter", "fft")
SIZE = 64 * 64
FAILURES: list = []


def chaos_plan() -> FaultPlan:
    return FaultPlan(
        transient=(TransientFaults("*", probability=0.05),),
        stragglers=(Straggler("tpu0", slowdown=4.0, start=2e-4),),
        corruption=(OutputCorruption("cpu0", probability=0.1),),
    )


def check(ok: bool, what: str) -> None:
    print(f"  {'ok  ' if ok else 'FAIL'} {what}")
    if not ok:
        FAILURES.append(what)


def spec_for(index: int, deadline_every: int = 10) -> JobSpec:
    qos = ("gold", "silver", "bronze")[index % 3]
    tenant = f"tenant-{index % 4}"
    deadline = 1e-6 if deadline_every and index % deadline_every == 0 else None
    return JobSpec(
        kernel=KERNELS[index % len(KERNELS)],
        size=SIZE,
        seed=index,
        qos_class=qos,
        deadline=deadline,
        tenant=tenant,
        job_id=f"soak-{index:05d}",
    )


def stage_a_overload(n_jobs: int, validate: bool, overlap: int) -> None:
    print(
        f"stage A: open-loop overload, {n_jobs} jobs, chaos + shed policy, "
        f"overlap_jobs={overlap}"
    )
    service = ShmtService(
        ServiceConfig(
            workers=4,
            admission=AdmissionConfig(capacity=8, policy="shed", tenant_cap=6),
            fault_plan=chaos_plan(),
            validate=validate,
            overlap_jobs=overlap,
        )
    ).start()
    jobs, rejected = [], 0
    for index in range(n_jobs):
        try:
            jobs.append(service.submit(spec_for(index)))
        except AdmissionRejected:
            rejected += 1
    service.stop(drain=True)
    service.join(300)
    for job in jobs:
        job.wait(timeout=10)
    states = Counter(job.state for job in jobs)
    print(f"  states: {dict((s.value, c) for s, c in states.items())}, rejected={rejected}")
    check(all(job.state.terminal for job in jobs), "every accepted job reached a terminal state")
    check(states[JobState.FAILED] == 0, "chaos never produced an unrecoverable failure")
    check(states[JobState.DEADLINE] > 0, "unmeetable deadlines were cancelled")
    counters = {
        name: (service.metrics.get(name).total() if service.metrics.get(name) else 0.0)
        for name in (
            "serve_jobs_submitted_total",
            "serve_jobs_completed_total",
            "serve_jobs_shed_total",
            "serve_jobs_rejected_total",
            "serve_jobs_deadline_cancelled_total",
            "serve_jobs_failed_total",
        )
    }
    check(
        counters["serve_jobs_submitted_total"] + counters["serve_jobs_rejected_total"]
        == n_jobs,
        "metrics account for every submission attempt",
    )
    check(
        counters["serve_jobs_shed_total"] == states[JobState.SHED],
        "metrics shed count matches observed shed jobs",
    )
    check(
        counters["serve_jobs_rejected_total"] == rejected,
        "metrics rejected count matches raised rejections",
    )
    check(
        counters["serve_jobs_completed_total"] == states[JobState.DONE],
        "metrics completed count matches DONE jobs",
    )
    check(
        counters["serve_jobs_deadline_cancelled_total"] == states[JobState.DEADLINE],
        "metrics deadline count matches cancelled jobs",
    )
    depth = service.metrics.get("serve_queue_depth")
    check(depth is not None, "queue depth gauge was exported")
    p50 = service.latency_quantile(0.5)
    p99 = service.latency_quantile(0.99)
    check(p50 is not None and p99 is not None and p99 >= p50, "p50/p99 latency computed")
    print(f"  latency p50={p50 * 1e3:.3f}ms p99={p99 * 1e3:.3f}ms")


def stage_b_closed_loop(n_jobs: int, validate: bool, overlap: int) -> None:
    print(
        f"stage B: closed-loop arrival, {n_jobs} jobs, block policy, "
        f"overlap_jobs={overlap}"
    )
    service = ShmtService(
        ServiceConfig(
            workers=4,
            admission=AdmissionConfig(capacity=4, policy="block", block_timeout=120.0),
            fault_plan=chaos_plan(),
            validate=validate,
            overlap_jobs=overlap,
        )
    ).start()
    jobs: list = []
    lock = threading.Lock()

    def submitter(offset: int, count: int) -> None:
        for index in range(offset, offset + count):
            job = service.submit(spec_for(1000 + index, deadline_every=0))
            with lock:
                jobs.append(job)

    quarter = n_jobs // 4
    threads = [
        threading.Thread(target=submitter, args=(i * quarter, quarter))
        for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(300)
    service.stop(drain=True)
    service.join(300)
    for job in jobs:
        job.wait(timeout=10)
    done = sum(1 for job in jobs if job.state is JobState.DONE)
    print(f"  {done}/{len(jobs)} done")
    check(len(jobs) == quarter * 4, "every blocked submission was admitted")
    check(done == len(jobs), "closed-loop jobs all completed")


def stage_c_kill_resume(
    n_jobs: int, validate: bool, checkpoint_dir: str, overlap: int
) -> None:
    print(f"stage C: kill-and-resume drill, {n_jobs} jobs, overlap_jobs={overlap}")
    specs = [spec_for(2000 + i, deadline_every=0) for i in range(n_jobs)]
    # Breakers that never trip: the drill's blocked sets stay empty, so
    # the uninterrupted reference is trivially comparable.
    breaker = BreakerConfig(failure_threshold=10_000)

    def config(path, kill_after=None, workers=2):
        return ServiceConfig(
            workers=workers,
            admission=AdmissionConfig(capacity=max(8, n_jobs), policy="block"),
            breaker=breaker,
            fault_plan=chaos_plan(),
            validate=validate,
            checkpoint_path=path,
            kill_after_hlops=kill_after,
            overlap_jobs=overlap,
        )

    # Reference: same specs, no kill.
    reference = ShmtService(config(None)).start()
    ref_jobs = [reference.submit(spec) for spec in specs]
    reference.stop(drain=True)
    reference.join(300)
    fingerprints = {}
    for job in ref_jobs:
        job.wait(10)
        if job.state is JobState.DONE:
            fingerprints[job.spec.job_id] = job.result.fingerprint
    check(len(fingerprints) == n_jobs, "uninterrupted reference run completed every job")

    # Drill: kill mid-soak at an HLOP boundary.
    journal_path = os.path.join(checkpoint_dir, "soak-journal.jsonl")
    victim = ShmtService(config(journal_path, kill_after=max(10, n_jobs))).start()
    drill_jobs, unsubmitted = [], []
    for spec in specs:
        try:
            drill_jobs.append(victim.submit(spec))
        except ServiceStopped:
            unsubmitted.append(spec)  # kill fired mid-submission loop
    victim.join(300)
    check(victim.killed, "kill drill fired mid-soak")
    interrupted = [j for j in drill_jobs if not j.state.terminal]
    print(
        f"  killed with {len(interrupted)} in-flight/queued job(s) "
        f"and {len(unsubmitted)} unsubmitted"
    )
    check(
        interrupted or unsubmitted,
        "the kill left work in flight (drill is meaningful)",
    )

    # Resume from the journal; re-submit jobs the journal never saw start.
    service, resumed = ShmtService.resume(journal_path, config(journal_path))
    service.start()
    journal = load_checkpoint(journal_path)
    started = set(journal.jobs)
    for job in drill_jobs:
        if not job.state.terminal and job.spec.job_id not in started:
            resumed.append(service.submit(job.spec))
    for spec in unsubmitted:
        resumed.append(service.submit(spec))
    service.stop(drain=True)
    service.join(300)
    outcomes = {}
    for job in drill_jobs:
        if job.state.terminal:
            outcomes[job.spec.job_id] = job
    for job in resumed:
        job.wait(10)
        outcomes[job.spec.job_id] = job
    check(
        set(outcomes) == {spec.job_id for spec in specs},
        "zero lost jobs: every submitted job reached a terminal state",
    )
    mismatched = [
        job_id
        for job_id, job in outcomes.items()
        if job.state is not JobState.DONE
        or job.result.fingerprint != fingerprints[job_id]
    ]
    check(not mismatched, f"resumed results bit-identical to uninterrupted run {mismatched or ''}")

    # Journal audit: one terminal record per job, no duplicated HLOPs.
    final = load_checkpoint(journal_path)
    ends = Counter()
    hlop_dups = 0
    with open(journal_path, "r", encoding="utf-8") as handle:
        seen_hlops = set()
        for line in handle:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("type") == "job-end":
                ends[record["job_id"]] += 1
            elif record.get("type") == "hlop":
                key = (record["job_id"], record["hlop_id"])
                if key in seen_hlops:
                    hlop_dups += 1
                seen_hlops.add(key)
    check(
        all(count == 1 for count in ends.values()) and len(ends) == len(specs),
        "journal holds exactly one terminal record per job",
    )
    check(hlop_dups == 0, "zero duplicated HLOP journal records (no double aggregation)")
    check(
        all(j.state == "done" for j in final.terminal()),
        "journal terminal states are all done",
    )


def stage_d_breaker(n_jobs: int, validate: bool, overlap: int) -> None:
    print(f"stage D: forced-open breaker drill, {n_jobs} jobs, overlap_jobs={overlap}")
    clock = [0.0]
    service = ShmtService(
        ServiceConfig(
            workers=2,
            admission=AdmissionConfig(capacity=max(8, n_jobs), policy="block"),
            breaker=BreakerConfig(failure_threshold=3, cooldown=5.0, close_threshold=2),
            breaker_clock=lambda: clock[0],
            validate=validate,
            overlap_jobs=overlap,
        )
    ).start()
    service.breakers.force_open("tpu0")
    first = [
        service.submit(
            JobSpec(
                kernel="laplacian",
                size=256 * 256,
                seed=i,
                policy="work-stealing",
                job_id=f"breaker-a-{i}",
            )
        )
        for i in range(n_jobs // 2)
    ]
    for job in first:
        job.wait(60)
    check(
        all(j.state is JobState.DONE for j in first),
        "jobs completed on surviving devices while the breaker was open",
    )
    check(
        all("tpu0" in (j.blocked or []) for j in first),
        "open breaker excluded tpu0 from every run",
    )
    clock[0] = 10.0  # cooldown elapses; next admissions probe half-open
    second = [
        service.submit(
            JobSpec(
                kernel="laplacian",
                size=256 * 256,
                seed=100 + i,
                policy="work-stealing",
                job_id=f"breaker-b-{i}",
            )
        )
        for i in range(n_jobs - n_jobs // 2)
    ]
    service.stop(drain=True)
    service.join(300)
    for job in second:
        job.wait(60)
    check(
        all(j.state is JobState.DONE for j in second),
        "post-cooldown jobs completed",
    )
    check(
        service.breakers.state("tpu0") is BreakerState.CLOSED,
        "breaker re-closed after half-open probe successes",
    )
    transitions = service.metrics.get("serve_breaker_transitions_total")
    series = transitions.series() if transitions is not None else {}
    tags = {dict(key).get("to") for key in series}
    check(
        {"open", "half-open", "closed"} <= tags,
        "breaker transition metrics recorded open/half-open/closed",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized soak (>=200 jobs)")
    parser.add_argument(
        "--validate", action="store_true", help="invariant-check every job's run"
    )
    parser.add_argument(
        "--overlap-jobs",
        type=int,
        default=2,
        metavar="K",
        help="jobs each worker drives concurrently through the overlap "
        "driver (default: 2; 1 = classic sequential workers)",
    )
    args = parser.parse_args()
    if args.quick:
        a_jobs, b_jobs, c_jobs, d_jobs = 140, 40, 24, 8
    else:
        a_jobs, b_jobs, c_jobs, d_jobs = 400, 120, 60, 16
    total = a_jobs + b_jobs + c_jobs + d_jobs
    suffix = " (invariant checking on)" if args.validate else ""
    print(f"soak check: {total} jobs across four stages{suffix}")
    started = time.monotonic()
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        stage_a_overload(a_jobs, args.validate, args.overlap_jobs)
        stage_b_closed_loop(b_jobs, args.validate, args.overlap_jobs)
        stage_c_kill_resume(c_jobs, args.validate, tmp, args.overlap_jobs)
        stage_d_breaker(d_jobs, args.validate, args.overlap_jobs)
    elapsed = time.monotonic() - started
    if FAILURES:
        print(f"\nFAILED ({len(FAILURES)}): " + "; ".join(FAILURES))
        sys.exit(1)
    print(f"\nsoak passed: {total} jobs, {elapsed:.1f}s wall")


if __name__ == "__main__":
    main()
