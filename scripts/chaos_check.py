#!/usr/bin/env python
"""Chaos smoke check: every scheduler survives a canned fault plan.

Runs each registered scheduling policy under one adversarial plan --
5% transient failures everywhere, the GPU dying mid-run, a straggling
Edge TPU, and corrupted CPU output -- and asserts the fault-tolerant
runtime still delivers a complete, finite result.

Run after any change to the runtime's scheduling or recovery paths:

    PYTHONPATH=src python scripts/chaos_check.py [--validate] [policy ...]

``--validate`` additionally runs every policy under the runtime invariant
checker (``repro.verify``), so recovery paths that silently corrupt the
run's accounting -- a re-queued HLOP aggregated twice, a steal that loses
a queue entry -- fail the check even when the output looks fine.

Exits non-zero if any policy fails to recover.
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    DeviceDeath,
    FaultPlan,
    OutputCorruption,
    RuntimeConfig,
    SHMTRuntime,
    Straggler,
    TransientFaults,
    jetson_nano_platform,
    make_scheduler,
    scheduler_names,
)
from repro.core.partition import PartitionConfig
from repro.workloads import generate

# gpu-baseline / edge-tpu-only run on a single device: killing it has no
# legal recovery target, so the chaos plan exempts those two from death.
SINGLE_DEVICE = {"gpu-baseline", "edge-tpu-only"}


def chaos_plan(kill_gpu: bool) -> FaultPlan:
    return FaultPlan(
        transient=(TransientFaults("*", probability=0.05),),
        deaths=(DeviceDeath("gpu0", at_time=5e-4),) if kill_gpu else (),
        stragglers=(Straggler("tpu0", slowdown=8.0, start=2e-4),),
        corruption=(OutputCorruption("cpu0", probability=0.3),),
    )


def check(policy: str, validate: bool = False) -> bool:
    call = generate("sobel", size=(256, 256), seed=11)
    config = RuntimeConfig(
        partition=PartitionConfig(target_partitions=16),
        fault_plan=chaos_plan(kill_gpu=policy not in SINGLE_DEVICE),
        validate=validate,
    )
    try:
        runtime = SHMTRuntime(jetson_nano_platform(), make_scheduler(policy), config)
        report = runtime.execute(call)
    except Exception as exc:  # noqa: BLE001 - report and keep sweeping
        print(f"  {policy:<22} FAIL   {type(exc).__name__}: {exc}")
        return False
    finite = bool(np.all(np.isfinite(report.output)))
    complete = report.output.shape == call.data.shape
    ok = finite and complete
    print(
        f"  {policy:<22} {'ok' if ok else 'FAIL':<6} "
        f"makespan={report.makespan * 1e3:7.3f}ms "
        f"retries={report.retry_count:<3d} requeues={report.requeue_count:<3d} "
        f"faults={len(report.fault_events):<3d} degraded={report.degraded}"
    )
    return ok


def main() -> None:
    argv = sys.argv[1:]
    validate = "--validate" in argv
    policies = [a for a in argv if a != "--validate"] or scheduler_names()
    suffix = " (invariant checking on)" if validate else ""
    print(f"chaos check: {len(policies)} policies under the canned fault plan{suffix}")
    failures = [p for p in policies if not check(p, validate=validate)]
    if failures:
        print(f"\nFAILED: {', '.join(failures)}")
        sys.exit(1)
    print("\nall policies recovered")


if __name__ == "__main__":
    main()
