#!/usr/bin/env python
"""Cluster drill for the sharded serving layer (``repro.cluster``).

Boots a real multi-process cluster (each shard is an OS process with its
own checkpoint journal) and drives it through the failure modes the
router exists to absorb, auditing the accounting afterwards:

* **Stage A -- overload (open loop)**: a heavy-tailed multi-tenant trace
  floods small shed-policy shard queues.  Every offered job must land in
  a terminal state, and the router's rollup must account for every
  submitted/done/shed/failed job exactly -- nothing lost, nothing
  double-counted.
* **Stage B -- kill drill**: the same trace runs twice; in the second
  run one shard (the one holding the most unfinished work) is SIGKILLed
  mid-run.  Every admitted job must complete **exactly once** --
  committed results are adopted from the dead shard's journal, the rest
  migrate -- and the fingerprints must be **bit-identical** to the
  undisturbed run.  A cross-journal audit proves no job produced a
  ``done`` record in more than one shard journal.
* **Stage C -- breaker drill**: one device breaker on one shard is
  forced open.  The router must degrade the shard (a ``degrade``
  decision), evict and migrate its backlog, place nothing on it while
  degraded, and restore it (a ``restore`` decision) once the breaker's
  cooldown lets the device recover.
* **Stage D -- churn + chaos soak**: the same trace runs calm, then over
  a seeded lossy transport (drop/duplicate/reorder on every link), then
  through a full membership soak under that chaos -- two joins, one
  graceful leave, one kill -9.  Every run must finish every job exactly
  once with fingerprints bit-identical to the calm run, the chaos-only
  run must resolve purely through protocol resends (zero crashes), and
  the cross-journal audit must stay clean across every generation.

Run::

    PYTHONPATH=src python scripts/cluster_check.py --quick

``--quick`` sizes the drill for CI; ``--artifacts DIR`` keeps the shard
journals and writes each stage's metrics rollup there (CI uploads the
directory when the drill fails).  Exits non-zero on any audit failure.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
import time
from collections import Counter

from repro.cluster import (
    ChaosConfig,
    ClusterConfig,
    ClusterRouter,
    ShardSpec,
    TraceConfig,
    generate_trace,
    replay,
)
from repro.obs.export import validate_records
from repro.serve import AdmissionConfig, BreakerConfig, load_checkpoint
from repro.serve.job import JobState

FAILURES: list = []


def check(ok: bool, what: str) -> None:
    print(f"  {'ok  ' if ok else 'FAIL'} {what}")
    if not ok:
        FAILURES.append(what)


def wait_all(router: ClusterRouter, timeout: float = 240.0) -> list:
    jobs = list(router.jobs.values())
    deadline = time.monotonic() + timeout
    for job in jobs:
        if not job.wait(max(0.1, deadline - time.monotonic())):
            check(False, f"job {job.job_id} never reached a terminal state")
    return jobs


def dump_rollup(router: ClusterRouter, artifacts: str, stage: str) -> None:
    path = os.path.join(artifacts, f"rollup_{stage}.jsonl")
    router.metrics.write_jsonl(path, meta={"stage": stage})


def stage_overload(artifacts: str, quick: bool) -> None:
    """Stage A: open-loop flood into tiny shed queues; audit accounting."""
    jobs = 60 if quick else 200
    print(f"stage A: open-loop overload ({jobs} jobs, shed policy)")
    config = ClusterConfig(
        journal_dir=os.path.join(artifacts, "journals_overload"),
        shards=3,
        shard=ShardSpec(
            workers=1,
            admission=AdmissionConfig(capacity=4, policy="shed"),
        ),
    )
    trace = generate_trace(
        TraceConfig(jobs=jobs, tenants=4, seed=11, size=32 * 32)
    )
    router = ClusterRouter(config).start()
    stats = replay(router.submit, trace)
    handles = wait_all(router)
    router.stop()
    dump_rollup(router, artifacts, "overload")

    states = Counter(job.state.value for job in handles)
    terminal = sum(states.values())
    check(
        stats.offered == jobs and stats.rejected == 0,
        f"router admitted the whole open-loop trace ({stats.submitted}/{jobs})",
    )
    check(
        terminal == stats.submitted,
        f"every admitted job is terminal ({terminal}/{stats.submitted})",
    )
    check(
        states.get("shed", 0) > 0,
        f"overload actually shed work (shed={states.get('shed', 0)})",
    )
    check(states.get("failed", 0) == 0, "no job failed under overload")
    # The rollup must account for every job exactly: per-state counters
    # match the observed states, submissions match the offered load.
    check(
        router.metrics.total("cluster_jobs_submitted_total") == stats.submitted,
        "rollup submitted counter matches the offered load",
    )
    for state, observed in sorted(states.items()):
        total = router.metrics.total(f"cluster_jobs_{state}_total")
        check(
            total == observed,
            f"rollup counter cluster_jobs_{state}_total == {observed}",
        )
    records = router.metrics.records({"stage": "overload"})
    try:
        validate_records(records)
        check(True, f"rollup validates as repro.obs/v1 ({len(records)} records)")
    except Exception as error:  # noqa: BLE001 - audit boundary
        check(False, f"rollup failed schema validation: {error}")


def run_trace(
    artifacts: str,
    journal_tag: str,
    trace,
    kill_one: bool,
) -> tuple:
    """Run one trace through a fresh 3-shard cluster; optionally SIGKILL
    the busiest shard mid-run.  Returns (jobs, router, killed_shard)."""
    config = ClusterConfig(
        journal_dir=os.path.join(artifacts, journal_tag),
        shards=3,
        shard=ShardSpec(
            workers=2,
            admission=AdmissionConfig(capacity=512, policy="block"),
        ),
    )
    router = ClusterRouter(config).start()
    replay(router.submit, trace)
    killed = None
    if kill_one:
        time.sleep(0.3)  # let every shard pick up real work first
        counts = router.assigned_counts()
        killed = max(counts, key=lambda name: counts[name])
        pid = router.shard_pid(killed)
        os.kill(pid, signal.SIGKILL)
        print(f"  killed {killed} (pid {pid}) holding {counts[killed]} jobs")
    jobs = wait_all(router)
    router.stop()
    return jobs, router, killed


def stage_kill(artifacts: str, quick: bool) -> None:
    """Stage B: kill -9 a shard mid-run; exactly-once, bit-identical."""
    n = 30 if quick else 90
    print(f"stage B: kill -9 drill ({n} jobs, 3 shards)")
    trace = generate_trace(TraceConfig(jobs=n, tenants=4, seed=23, size=32 * 32))

    reference, ref_router, _ = run_trace(artifacts, "journals_ref", trace, False)
    dump_rollup(ref_router, artifacts, "kill_reference")
    ref_states = Counter(j.state.value for j in reference)
    check(
        ref_states.get("done", 0) == n,
        f"undisturbed reference completed everything ({ref_states})",
    )
    ref_fp = {j.job_id: j.fingerprint for j in reference}

    disturbed, router, killed = run_trace(artifacts, "journals_kill", trace, True)
    dump_rollup(router, artifacts, "kill_disturbed")
    states = Counter(j.state.value for j in disturbed)
    check(
        states.get("done", 0) == n,
        f"every admitted job completed despite the kill ({dict(states)})",
    )
    check(
        router.metrics.total("cluster_shard_crashes_total") >= 1,
        "the supervisor declared the killed shard dead",
    )
    check(
        router.metrics.total("cluster_shard_restarts_total") >= 1,
        "the killed shard slot was restarted",
    )
    moved = sum(1 for j in disturbed if len(j.placements) > 1)
    adopted = len(router.metrics.decisions("adopt"))
    check(
        moved + adopted > 0,
        f"recovery actually moved or adopted work (migrated={moved}, "
        f"adopted={adopted})",
    )
    fp = {j.job_id: j.fingerprint for j in disturbed}
    mismatched = [
        job_id for job_id in ref_fp if fp.get(job_id) != ref_fp[job_id]
    ]
    check(
        not mismatched,
        f"fingerprints bit-identical to the undisturbed run "
        f"({len(ref_fp) - len(mismatched)}/{len(ref_fp)})",
    )

    # Cross-journal exactly-once audit: no job may hold a committed
    # `done` record in more than one shard journal, and every done job
    # must hold at least one *somewhere* (its own shard's or, when its
    # result message died with the shard, the journal it was adopted
    # from).
    journal_dir = os.path.join(artifacts, "journals_kill")
    done_records: Counter = Counter()
    for name in sorted(os.listdir(journal_dir)):
        state = load_checkpoint(os.path.join(journal_dir, name))
        for job_id, journal in state.jobs.items():
            if journal.state == "done":
                done_records[job_id] += 1
    duplicated = sorted(j for j, c in done_records.items() if c > 1)
    check(
        not duplicated,
        f"no job committed `done` in two journals (duplicates: {duplicated})",
    )
    missing = sorted(
        j.job_id
        for j in disturbed
        if j.state is JobState.DONE and done_records.get(j.job_id, 0) == 0
    )
    check(
        not missing,
        f"every done job has a journal commit (missing: {missing})",
    )


def stage_breaker(artifacts: str, quick: bool) -> None:
    """Stage C: forced-open breaker -> degrade, migrate, restore."""
    n = 40 if quick else 120
    print(f"stage C: forced-open breaker drill ({n} jobs)")
    config = ClusterConfig(
        journal_dir=os.path.join(artifacts, "journals_breaker"),
        shards=3,
        shard=ShardSpec(
            workers=1,
            admission=AdmissionConfig(capacity=512, policy="block"),
            breaker=BreakerConfig(cooldown=0.5),
        ),
    )
    trace = generate_trace(TraceConfig(jobs=n, tenants=4, seed=31, size=32 * 32))
    router = ClusterRouter(config).start()
    replay(router.submit, trace)
    victim = max(router.assigned_counts().items(), key=lambda kv: kv[1])[0]
    router.force_open(victim, "gpu0")
    print(f"  forced gpu0 open on {victim}")
    jobs = wait_all(router)
    # Give the heartbeat a moment to observe the breaker walking back
    # through half-open, then stop.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if router.metrics.decisions("restore"):
            break
        time.sleep(0.05)
    router.stop()
    dump_rollup(router, artifacts, "breaker")

    states = Counter(j.state.value for j in jobs)
    check(
        states.get("done", 0) == n,
        f"every job completed despite the open breaker ({dict(states)})",
    )
    degrades = router.metrics.decisions("degrade")
    restores = router.metrics.decisions("restore")
    check(
        any(d["device"] == victim for d in degrades),
        f"router degraded {victim} on the breaker heartbeat",
    )
    check(
        any(r["device"] == victim for r in restores),
        f"router restored {victim} after the breaker cooldown",
    )
    migrated = router.metrics.total("cluster_jobs_migrated_total")
    check(
        migrated >= 1,
        f"degraded shard's backlog migrated to healthy shards ({migrated:g})",
    )
    # While degraded, the victim must receive no new placements: every
    # `place` on the victim sits outside the [degrade, restore) window.
    first_degrade = min(d["seq"] for d in degrades if d["device"] == victim)
    first_restore = min(
        (r["seq"] for r in restores if r["device"] == victim),
        default=float("inf"),
    )
    misplaced = [
        p
        for p in router.metrics.decisions("place")
        if p["device"] == victim and first_degrade < p["seq"] < first_restore
    ]
    check(
        not misplaced,
        f"no job was placed on {victim} while degraded "
        f"({len(misplaced)} violations)",
    )


def audit_exactly_once(journal_dir: str, done_jobs: list) -> None:
    """Cross-journal audit: every done job committed `done` in exactly
    one shard journal across *every* generation ever spawned."""
    done_records: Counter = Counter()
    for name in sorted(os.listdir(journal_dir)):
        state = load_checkpoint(os.path.join(journal_dir, name))
        for job_id, journal in state.jobs.items():
            if journal.state == "done":
                done_records[job_id] += 1
    duplicated = sorted(j for j, c in done_records.items() if c > 1)
    check(
        not duplicated,
        f"no job committed `done` in two journals (duplicates: {duplicated})",
    )
    missing = sorted(
        j.job_id for j in done_jobs if done_records.get(j.job_id, 0) == 0
    )
    check(
        not missing,
        f"every done job has a journal commit (missing: {missing})",
    )


def stage_churn(artifacts: str, quick: bool) -> None:
    """Stage D: seeded churn + chaos soak.

    One trace, three runs:

    1. a **calm** run (no churn, no chaos) pins the reference
       fingerprints;
    2. a **chaos-only** run (drop + duplicate + reorder on every link, no
       crashes) must resolve every job through resends alone;
    3. a **churn soak** under the same chaos: two shards join the running
       ring, one leaves gracefully, one is SIGKILLed mid-flight -- and
       the cluster must still finish every job exactly once, bit-identical
       to the calm run, with a clean cross-journal audit.
    """
    n = 40 if quick else 120
    print(f"stage D: churn + chaos soak ({n} jobs)")
    trace = generate_trace(TraceConfig(jobs=n, tenants=4, seed=41, size=32 * 32))
    chaos = ChaosConfig(seed=41, drop=0.08, duplicate=0.08, delay=0.08)

    def build(tag: str, with_chaos: bool) -> ClusterRouter:
        return ClusterRouter(
            ClusterConfig(
                journal_dir=os.path.join(artifacts, tag),
                shards=3,
                shard=ShardSpec(
                    workers=1,
                    admission=AdmissionConfig(capacity=512, policy="block"),
                ),
                chaos=chaos if with_chaos else None,
            )
        ).start()

    # 1. Calm reference.
    router = build("journals_churn_calm", with_chaos=False)
    replay(router.submit, trace)
    calm = wait_all(router)
    router.stop()
    dump_rollup(router, artifacts, "churn_calm")
    calm_states = Counter(j.state.value for j in calm)
    check(
        calm_states.get("done", 0) == n,
        f"calm reference completed everything ({dict(calm_states)})",
    )
    ref_fp = {j.job_id: j.fingerprint for j in calm}

    # 2. Chaos-only: a faulty transport, but nobody dies.
    router = build("journals_churn_chaos", with_chaos=True)
    replay(router.submit, trace)
    jobs = wait_all(router)
    router.stop()
    dump_rollup(router, artifacts, "churn_chaos")
    states = Counter(j.state.value for j in jobs)
    check(
        states.get("done", 0) == n,
        f"chaos-only run resolved every job ({dict(states)})",
    )
    check(
        router.metrics.total("cluster_shard_crashes_total") == 0,
        "chaos alone crashed nothing (the protocol absorbed the faults)",
    )
    resent = router.metrics.total("transport_resent_total")
    dropped = router.metrics.total("transport_dropped_total")
    check(
        resent > 0,
        f"the faulty transport forced resends (dropped={dropped:g}, "
        f"resent={resent:g})",
    )
    fp = {j.job_id: j.fingerprint for j in jobs}
    mismatched = [j for j in ref_fp if fp.get(j) != ref_fp[j]]
    check(
        not mismatched,
        f"chaos-only fingerprints bit-identical to calm "
        f"({n - len(mismatched)}/{n})",
    )

    # 3. The soak: churn the membership while chaos eats the wires.
    router = build("journals_churn_soak", with_chaos=True)
    replay(router.submit, trace)
    joined_a = router.add_shard()
    joined_b = router.add_shard()
    router.remove_shard("shard-2", drain=True, timeout=120.0)
    live = [s for s, st in router.shard_states().items() if st == "live"]
    counts = router.assigned_counts()
    victim = max(live, key=lambda name: counts.get(name, 0))
    pid = router.shard_pid(victim)
    os.kill(pid, signal.SIGKILL)
    print(
        f"  joined {joined_a}+{joined_b}, drained shard-2, "
        f"killed {victim} (pid {pid})"
    )
    jobs = wait_all(router)
    drift = router.rebalance()
    router.stop()
    dump_rollup(router, artifacts, "churn_soak")

    states = Counter(j.state.value for j in jobs)
    check(
        states.get("done", 0) == n,
        f"soak finished every job exactly once ({dict(states)})",
    )
    check(
        router.metrics.total("cluster_reshard_joins_total") >= 2,
        "two shards joined the running ring",
    )
    check(
        len(router.metrics.decisions("leave")) >= 1
        and len(router.metrics.decisions("retire")) >= 1,
        "one shard left gracefully and was retired",
    )
    check(
        router.metrics.total("cluster_shard_crashes_total") >= 1,
        "the SIGKILLed shard was declared dead and recovered",
    )
    check(
        drift["drifted"] <= drift["jobs"],
        f"rebalance audit ran (drift {drift['drifted']}/{drift['jobs']})",
    )
    fp = {j.job_id: j.fingerprint for j in jobs}
    mismatched = [j for j in ref_fp if fp.get(j) != ref_fp[j]]
    check(
        not mismatched,
        f"soak fingerprints bit-identical to calm ({n - len(mismatched)}/{n})",
    )
    audit_exactly_once(
        os.path.join(artifacts, "journals_churn_soak"),
        [j for j in jobs if j.state is JobState.DONE],
    )
    records = router.metrics.records({"stage": "churn_soak"})
    try:
        validate_records(records)
        check(True, f"soak rollup validates as repro.obs/v1 ({len(records)} records)")
    except Exception as error:  # noqa: BLE001 - audit boundary
        check(False, f"soak rollup failed schema validation: {error}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized drill (~130 jobs)"
    )
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="keep journals + rollups here (default: a temp dir)",
    )
    args = parser.parse_args()
    artifacts = args.artifacts or tempfile.mkdtemp(prefix="repro-cluster-check-")
    os.makedirs(artifacts, exist_ok=True)
    print(f"cluster drill artifacts: {artifacts}")

    started = time.monotonic()
    stage_overload(artifacts, args.quick)
    stage_kill(artifacts, args.quick)
    stage_breaker(artifacts, args.quick)
    stage_churn(artifacts, args.quick)
    elapsed = time.monotonic() - started

    print(f"\ncluster drill finished in {elapsed:.1f} s")
    if FAILURES:
        print(f"FAILED ({len(FAILURES)} audit(s)):")
        for failure in FAILURES:
            print(f"  - {failure}")
        return 1
    print("all cluster audits passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
